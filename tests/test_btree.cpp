/**
 * @file
 * Tests for the Sherman-style B+Tree: layout invariants, host-side bulk
 * build, client lookup/insert/remove/scan over RDMA, splits (leaf,
 * internal, root growth), speculative lookup correctness including
 * invalidation, and HOCL lock behaviour under concurrency.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "apps/sherman/btree.hpp"
#include "harness/testbed.hpp"

using namespace smart;
using namespace smart::sherman;
using namespace smart::harness;
using sim::Task;

TEST(BtreeLayout, SizesAndPacking)
{
    EXPECT_EQ(sizeof(NodeImage), 1024u);
    EXPECT_EQ(kNodeCapacity, 45u);
    std::uint64_t p = packPtr(3, 0x123456);
    EXPECT_EQ(ptrBlade(p), 3u);
    EXPECT_EQ(ptrOffset(p), 0x123456u);
    EXPECT_EQ(lineOffset(0), 64u);
    EXPECT_EQ(lineOffset(14), 64u * 15);
}

TEST(BtreeLayout, VersionConsistencyCheck)
{
    NodeImage img{};
    EXPECT_TRUE(versionsConsistent(img));
    img.lines[7].version = 42;
    EXPECT_FALSE(versionsConsistent(img));
}

namespace {

struct BtreeFixture : ::testing::Test
{
    TestbedConfig tcfg;
    std::unique_ptr<Testbed> tb;
    std::unique_ptr<BtreeIndex> index;

    void
    build(const SmartConfig &smart, std::uint32_t threads, bool spec,
          std::uint64_t keys)
    {
        tcfg.computeBlades = 1;
        tcfg.memoryBlades = 2;
        tcfg.threadsPerBlade = threads;
        tcfg.bladeBytes = 512ull << 20;
        tcfg.smart = smart;
        tb = std::make_unique<Testbed>(tcfg);
        std::vector<memblade::MemoryBlade *> blades;
        for (std::uint32_t i = 0; i < tb->numMemBlades(); ++i)
            blades.push_back(&tb->memBlade(i));
        BtreeConfig bcfg;
        bcfg.speculativeLookup = spec;
        index = std::make_unique<BtreeIndex>(blades, bcfg);
        if (keys)
            index->loadSequential(keys, 0xabcdull);
    }
};

} // namespace

TEST_F(BtreeFixture, BulkLoadBuildsMultiLevelTree)
{
    build(presets::full(), 1, false, 10000);
    EXPECT_GT(index->height(), 2u);
    EXPECT_EQ(index->hostCount(), 10000u);
    for (std::uint64_t k : {0ull, 1ull, 4999ull, 9999ull}) {
        std::uint64_t v = 0;
        ASSERT_TRUE(index->hostLookup(k, v)) << k;
        EXPECT_EQ(v, k ^ 0xabcdull);
    }
    std::uint64_t v = 0;
    EXPECT_FALSE(index->hostLookup(10000, v));
}

TEST_F(BtreeFixture, ClientLookupHitsAndMisses)
{
    build(presets::full(), 2, false, 5000);
    BtreeClient client(*index, tb->compute(0));
    int checked = 0;
    tb->compute(0).spawnWorker(0, [&](SmartCtx &ctx) -> Task {
        for (std::uint64_t k = 0; k < 500; ++k) {
            BtOpResult res;
            co_await client.lookup(ctx, k * 10, res);
            EXPECT_TRUE(res.ok) << k * 10;
            EXPECT_EQ(res.value, (k * 10) ^ 0xabcdull);
            ++checked;
        }
        BtOpResult res;
        co_await client.lookup(ctx, 999999, res);
        EXPECT_FALSE(res.ok);
    });
    tb->sim().runUntil(sim::msec(200));
    EXPECT_EQ(checked, 500);
    EXPECT_GT(client.cacheSize(), 0u); // internals got cached
}

TEST_F(BtreeFixture, InsertUpdateRemove)
{
    build(presets::full(), 2, false, 1000);
    BtreeClient client(*index, tb->compute(0));
    int done = 0;
    tb->compute(0).spawnWorker(0, [&](SmartCtx &ctx) -> Task {
        BtOpResult res;
        // Update an existing key in place.
        co_await client.insert(ctx, 500, 7777, res);
        EXPECT_TRUE(res.ok);
        BtOpResult l1;
        co_await client.lookup(ctx, 500, l1);
        EXPECT_TRUE(l1.ok);
        EXPECT_EQ(l1.value, 7777u);
        // Remove it.
        BtOpResult rm;
        co_await client.remove(ctx, 500, rm);
        EXPECT_TRUE(rm.ok);
        BtOpResult l2;
        co_await client.lookup(ctx, 500, l2);
        EXPECT_FALSE(l2.ok);
        // Reinsert.
        BtOpResult ins;
        co_await client.insert(ctx, 500, 8888, ins);
        EXPECT_TRUE(ins.ok);
        BtOpResult l3;
        co_await client.lookup(ctx, 500, l3);
        EXPECT_TRUE(l3.ok);
        EXPECT_EQ(l3.value, 8888u);
        ++done;
    });
    tb->sim().runUntil(sim::msec(100));
    EXPECT_EQ(done, 1);
}

TEST_F(BtreeFixture, InsertsTriggerLeafSplits)
{
    build(presets::full(), 2, false, 100);
    BtreeClient client(*index, tb->compute(0));
    int inserted = 0;
    tb->compute(0).spawnWorker(0, [&](SmartCtx &ctx) -> Task {
        // Dense inserts into the loaded range force splits (leaves were
        // loaded at 70% fill).
        for (std::uint64_t k = 0; k < 2000; ++k) {
            BtOpResult res;
            co_await client.insert(ctx, 1000 + k, k, res);
            EXPECT_TRUE(res.ok) << k;
            inserted += res.ok;
        }
    });
    tb->sim().runUntil(sim::sec(5));
    EXPECT_EQ(inserted, 2000);
    EXPECT_GT(client.splits(), 0u);
    // All keys reachable host-side.
    for (std::uint64_t k = 0; k < 2000; ++k) {
        std::uint64_t v = 0;
        ASSERT_TRUE(index->hostLookup(1000 + k, v)) << k;
        EXPECT_EQ(v, k);
    }
    // Pre-loaded keys below the inserted range survived.
    std::uint64_t v = 0;
    ASSERT_TRUE(index->hostLookup(50, v));
}

TEST_F(BtreeFixture, RootGrowsWhenNeeded)
{
    build(presets::full(), 2, false, 0); // empty tree: root is a leaf
    BtreeClient client(*index, tb->compute(0));
    int inserted = 0;
    tb->compute(0).spawnWorker(0, [&](SmartCtx &ctx) -> Task {
        for (std::uint64_t k = 0; k < 500; ++k) {
            BtOpResult res;
            co_await client.insert(ctx, k * 3, k, res);
            inserted += res.ok;
        }
    });
    tb->sim().runUntil(sim::sec(5));
    EXPECT_EQ(inserted, 500);
    EXPECT_EQ(index->hostCount(), 500u);
    for (std::uint64_t k = 0; k < 500; ++k) {
        std::uint64_t v = 0;
        ASSERT_TRUE(index->hostLookup(k * 3, v)) << k;
        EXPECT_EQ(v, k);
    }
}

TEST_F(BtreeFixture, ScanReturnsSortedRange)
{
    build(presets::full(), 2, false, 3000);
    BtreeClient client(*index, tb->compute(0));
    std::vector<Entry> out;
    tb->compute(0).spawnWorker(0, [&](SmartCtx &ctx) -> Task {
        BtOpResult res;
        co_await client.scan(ctx, 1500, 100, out, res);
        EXPECT_TRUE(res.ok);
    });
    tb->sim().runUntil(sim::msec(100));
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i].key, 1500 + i);
        EXPECT_EQ(out[i].value, (1500 + i) ^ 0xabcdull);
    }
}

TEST_F(BtreeFixture, SpeculativeLookupHitsAfterFirstAccess)
{
    build(presets::full(), 2, true, 2000);
    BtreeClient client(*index, tb->compute(0));
    tb->compute(0).spawnWorker(0, [&](SmartCtx &ctx) -> Task {
        BtOpResult first;
        co_await client.lookup(ctx, 700, first);
        EXPECT_TRUE(first.ok);
        EXPECT_FALSE(first.specHit);
        BtOpResult second;
        co_await client.lookup(ctx, 700, second);
        EXPECT_TRUE(second.ok);
        EXPECT_TRUE(second.specHit);
        EXPECT_EQ(second.value, 700u ^ 0xabcdull);
        // The fast path is a single 64 B READ.
        EXPECT_EQ(second.rdmaOps, 1u);
    });
    tb->sim().runUntil(sim::msec(100));
    EXPECT_GE(client.specHits(), 1u);
}

TEST_F(BtreeFixture, SpeculativeLookupSeesFreshValues)
{
    build(presets::full(), 2, true, 2000);
    BtreeClient client(*index, tb->compute(0));
    tb->compute(0).spawnWorker(0, [&](SmartCtx &ctx) -> Task {
        BtOpResult warm;
        co_await client.lookup(ctx, 900, warm);
        BtOpResult up;
        co_await client.insert(ctx, 900, 31337, up);
        EXPECT_TRUE(up.ok);
        BtOpResult res;
        co_await client.lookup(ctx, 900, res);
        EXPECT_TRUE(res.ok);
        EXPECT_TRUE(res.specHit); // same slot, fresh value
        EXPECT_EQ(res.value, 31337u);
    });
    tb->sim().runUntil(sim::msec(100));
}

TEST_F(BtreeFixture, SpeculativeLookupFallsBackAfterDelete)
{
    build(presets::full(), 2, true, 2000);
    BtreeClient client(*index, tb->compute(0));
    tb->compute(0).spawnWorker(0, [&](SmartCtx &ctx) -> Task {
        BtOpResult warm;
        co_await client.lookup(ctx, 901, warm);
        BtOpResult rm;
        co_await client.remove(ctx, 901, rm);
        EXPECT_TRUE(rm.ok);
        BtOpResult res;
        co_await client.lookup(ctx, 901, res);
        EXPECT_FALSE(res.ok);
        EXPECT_FALSE(res.specHit);
    });
    tb->sim().runUntil(sim::msec(100));
}

TEST_F(BtreeFixture, ConcurrentInsertersKeepAllKeys)
{
    build(presets::full(), 4, false, 200);
    BtreeClient client(*index, tb->compute(0));
    int done = 0;
    for (std::uint32_t t = 0; t < 4; ++t) {
        tb->compute(0).spawnWorker(t, [&, t](SmartCtx &ctx) -> Task {
            for (std::uint64_t k = 0; k < 150; ++k) {
                BtOpResult res;
                co_await client.insert(ctx, 10000 + t * 1000 + k,
                                       t * 1000 + k, res);
                EXPECT_TRUE(res.ok);
            }
            ++done;
        });
    }
    tb->sim().runUntil(sim::sec(10));
    EXPECT_EQ(done, 4);
    for (std::uint32_t t = 0; t < 4; ++t) {
        for (std::uint64_t k = 0; k < 150; ++k) {
            std::uint64_t v = 0;
            ASSERT_TRUE(index->hostLookup(10000 + t * 1000 + k, v))
                << t << " " << k;
            EXPECT_EQ(v, t * 1000 + k);
        }
    }
}

TEST_F(BtreeFixture, HotLeafContentionSerializedByHocl)
{
    build(presets::full(), 4, false, 1000);
    BtreeClient client(*index, tb->compute(0));
    int done = 0;
    std::uint64_t retries = 0;
    for (std::uint32_t t = 0; t < 4; ++t) {
        tb->compute(0).spawnWorker(t, [&, t](SmartCtx &ctx) -> Task {
            for (int i = 0; i < 25; ++i) {
                BtOpResult res;
                co_await client.insert(ctx, 500, t * 100 + i, res);
                EXPECT_TRUE(res.ok);
                retries += res.retries;
            }
            ++done;
        });
    }
    tb->sim().runUntil(sim::sec(5));
    EXPECT_EQ(done, 4);
    // Same compute blade: the local HOCL table serializes writers, so
    // the remote lock CAS virtually never fails.
    EXPECT_EQ(retries, 0u);
    std::uint64_t v = 0;
    ASSERT_TRUE(index->hostLookup(500, v));
}

TEST_F(BtreeFixture, StaleLockLeaseBrokenInsteadOfDeadlock)
{
    // A writer on another compute blade died holding a leaf's HOCL lock
    // (simulated by setting the lock word directly in blade memory).
    // With a fault plane installed, a live writer spinning past the
    // lease must break the lock and complete instead of deadlocking.
    build(presets::full(), 1, false, 10);
    ASSERT_EQ(index->height(), 1u); // root is the one leaf
    std::uint64_t root_ptr = 0;
    std::memcpy(&root_ptr, tb->memBlade(0).bytesAt(index->rootPtrOffset()),
                8);
    std::uint64_t dead_lock = 1;
    std::memcpy(tb->memBlade(ptrBlade(root_ptr)).bytesAt(ptrOffset(root_ptr)),
                &dead_lock, 8);

    tb->faultPlane(9); // arms lease breaking; no faults scheduled
    BtreeClient client(*index, tb->compute(0));
    bool done = false;
    tb->compute(0).spawnWorker(0, [&](SmartCtx &ctx) -> Task {
        BtOpResult res;
        co_await client.insert(ctx, 4, 0xfeed, res);
        EXPECT_TRUE(res.ok);
        done = true;
    });
    tb->sim().runUntil(sim::msec(100));

    EXPECT_TRUE(done);
    EXPECT_GE(client.leaseBreaks(), 1u);
    std::uint64_t v = 0;
    ASSERT_TRUE(index->hostLookup(4, v));
    EXPECT_EQ(v, 0xfeedu);
    // The lock was released cleanly after the broken-lease acquisition.
    std::uint64_t lock_now = ~0ull;
    std::memcpy(&lock_now,
                tb->memBlade(ptrBlade(root_ptr)).bytesAt(ptrOffset(root_ptr)),
                8);
    EXPECT_EQ(lock_now, 0u);
}
