/**
 * @file
 * Unit tests for the verbs layer: the mlx5-style doorbell (UAR)
 * round-robin assignment the paper reverse-engineered, the
 * MLX5_TOTAL_UUARS-style tuning knob, QP posting, and CQ poll semantics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "memblade/memory_blade.hpp"
#include "sim/sim_thread.hpp"
#include "verbs/verbs.hpp"

using namespace smart;
using namespace smart::verbs;
using sim::SimThread;
using sim::Simulator;
using sim::Task;

namespace {

struct VerbsFixture : ::testing::Test
{
    Simulator sim;
    rnic::RnicConfig cfg;
    std::unique_ptr<memblade::MemoryBlade> blade;
    std::unique_ptr<rnic::Rnic> clientRnic;
    std::unique_ptr<Context> ctx;

    void
    SetUp() override
    {
        blade = std::make_unique<memblade::MemoryBlade>(sim, cfg, "mb",
                                                        1 << 20);
        clientRnic = std::make_unique<rnic::Rnic>(sim, cfg, "cb");
        ctx = std::make_unique<Context>(sim, *clientRnic);
    }
};

} // namespace

TEST_F(VerbsFixture, DefaultUarLayoutIsFourPlusTwelve)
{
    EXPECT_EQ(ctx->numUars(), 16u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_TRUE(ctx->uarAt(i).lowLatency);
    for (std::size_t i = 4; i < 16; ++i)
        EXPECT_FALSE(ctx->uarAt(i).lowLatency);
}

TEST_F(VerbsFixture, AppQpsUseMediumUarsWhenLowsReserved)
{
    // Default driver model: low-latency UARs are reserved for
    // kernel/control QPs, so the first app QP already lands on a
    // medium-latency doorbell.
    auto cq = ctx->createCq();
    auto qp = ctx->createQp(*cq, &blade->rnic());
    EXPECT_FALSE(qp->uar()->lowLatency);
}

TEST_F(VerbsFixture, FirstFourQpsGetDedicatedLowLatencyUars)
{
    rnic::RnicConfig unreserved = cfg;
    unreserved.reserveLowLatencyUars = false;
    rnic::Rnic rn(sim, unreserved, "cb2");
    Context c(sim, rn);
    auto cq = c.createCq();
    std::vector<std::unique_ptr<Qp>> qps;
    for (int i = 0; i < 4; ++i)
        qps.push_back(c.createQp(*cq, &blade->rnic()));
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(qps[i]->uar()->lowLatency);
        EXPECT_EQ(qps[i]->uar()->boundQps, 1u);
    }
}

TEST_F(VerbsFixture, LaterQpsRoundRobinOverMediumUars)
{
    rnic::RnicConfig unreserved = cfg;
    unreserved.reserveLowLatencyUars = false;
    rnic::Rnic rn(sim, unreserved, "cb2");
    Context c(sim, rn);
    auto cq = c.createCq();
    std::vector<std::unique_ptr<Qp>> qps;
    for (int i = 0; i < 4 + 24; ++i)
        qps.push_back(c.createQp(*cq, &blade->rnic()));
    // QP 4..15 take medium UARs 0..11; QP 16 wraps to the same UAR as QP 4.
    EXPECT_EQ(qps[4]->uar(), qps[16]->uar());
    EXPECT_EQ(qps[5]->uar(), qps[17]->uar());
    EXPECT_NE(qps[4]->uar(), qps[5]->uar());
    // Paper Fig. 2b example: QP16 and QP28 share a doorbell (1-indexed
    // there; 0-indexed 15 and 27 here).
    EXPECT_EQ(qps[15]->uar(), qps[27]->uar());
}

TEST_F(VerbsFixture, ReservedModeWrapsOverTwelveMediums)
{
    auto cq = ctx->createCq();
    std::vector<std::unique_ptr<Qp>> qps;
    for (int i = 0; i < 24; ++i)
        qps.push_back(ctx->createQp(*cq, &blade->rnic()));
    EXPECT_EQ(qps[0]->uar(), qps[12]->uar());
    EXPECT_NE(qps[0]->uar(), qps[1]->uar());
}

TEST_F(VerbsFixture, PredictNextUarMatchesCreation)
{
    auto cq = ctx->createCq();
    for (int i = 0; i < 40; ++i) {
        Uar *predicted = ctx->predictNextUar();
        auto qp = ctx->createQp(*cq, &blade->rnic());
        EXPECT_EQ(qp->uar(), predicted);
    }
}

TEST_F(VerbsFixture, TotalUarsKnobExpandsMediumPool)
{
    Context big(sim, *clientRnic, 96);
    EXPECT_EQ(big.numUars(), 4u + 96u);
    // With 96 medium UARs, the first 96 app QPs get distinct doorbells.
    auto cq = big.createCq();
    std::vector<Uar *> uars;
    for (int i = 0; i < 96; ++i)
        uars.push_back(big.createQp(*cq, &blade->rnic())->uar());
    for (int i = 0; i < 96; ++i)
        for (int j = i + 1; j < 96; ++j)
            EXPECT_NE(uars[i], uars[j]);
}

TEST_F(VerbsFixture, TotalUarsClampedToHardwareMax)
{
    Context huge(sim, *clientRnic, 10000);
    EXPECT_EQ(huge.numUars(), static_cast<std::size_t>(cfg.maxUars));
}

namespace {

Task
postAndWait(Simulator &sim, SimThread &thr, Qp &qp, Cq &cq,
            memblade::MemoryBlade &blade, int n, bool &done_flag, int &seen)
{
    struct CountingState
    {
        std::uint32_t pending = 0;
        bool done = true;
    };
    // Verbs-level test: a plain counter dispatched via the CQ. Lives in
    // the coroutine frame, which outlives the poll.
    CountingState state;
    state.pending = n;
    state.done = false;
    cq.setDispatch([&](const Wc &, const rnic::WorkReq &) {
        if (--state.pending == 0)
            state.done = true;
    });

    std::vector<rnic::WorkReq> wrs;
    for (int i = 0; i < n; ++i) {
        rnic::WorkReq wr;
        wr.op = rnic::Op::Read;
        wr.rkey = blade.rkey();
        wr.remoteOffset = 64 * static_cast<std::uint64_t>(i);
        wr.length = 8;
        wr.localBuf = nullptr;
        wrs.push_back(wr);
    }
    co_await qp.postSend(thr, std::move(wrs));
    co_await cq.pollUntil(thr, state.done);
    seen = n - static_cast<int>(state.pending);
    done_flag = true;
    (void)sim;
}

} // namespace

TEST_F(VerbsFixture, PostSendDeliversCompletions)
{
    SimThread thr(sim, 0);
    auto cq = ctx->createCq();
    auto qp = ctx->createQp(*cq, &blade->rnic());
    bool done = false;
    int seen = 0;
    sim.spawn(postAndWait(sim, thr, *qp, *cq, *blade, 8, done, seen));
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(seen, 8);
    EXPECT_EQ(clientRnic->perf().doorbellRings.value(), 1u);
}

TEST_F(VerbsFixture, DoorbellWaitAccountedUnderContention)
{
    // Two threads whose QPs share one medium UAR: the 13th app QP wraps
    // onto the 1st's doorbell (12 mediums).
    SimThread t1(sim, 0);
    SimThread t2(sim, 1);
    auto cq1 = ctx->createCq();
    auto cq2 = ctx->createCq();
    std::vector<std::unique_ptr<Qp>> qps;
    for (int i = 0; i < 12; ++i)
        qps.push_back(ctx->createQp(*cq1, &blade->rnic()));
    auto shared = ctx->createQp(*cq2, &blade->rnic()); // wraps onto qps[0]
    ASSERT_EQ(shared->uar(), qps[0]->uar());

    bool d1 = false, d2 = false;
    int s1 = 0, s2 = 0;
    sim.spawn(postAndWait(sim, t1, *qps[0], *cq1, *blade, 4, d1, s1));
    sim.spawn(postAndWait(sim, t2, *shared, *cq2, *blade, 4, d2, s2));
    sim.run();
    EXPECT_TRUE(d1);
    EXPECT_TRUE(d2);
    // One of the two rings waited behind the other's MMIO.
    EXPECT_GT(clientRnic->perf().doorbellWaitNs.value(), 0u);
}

TEST(MemoryBladeTest, AllocAlignsAndAdvances)
{
    Simulator sim;
    rnic::RnicConfig cfg;
    memblade::MemoryBlade blade(sim, cfg, "mb", 1 << 20);
    std::uint64_t a = blade.alloc(100, 64);
    std::uint64_t b = blade.alloc(100, 64);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_GT(blade.freeBytes(), 0u);
}

TEST(MemoryBladeTest, ArenaFreelistReuses)
{
    memblade::RemoteArena arena(1000, 10000);
    std::uint64_t a = arena.alloc(64);
    arena.free(a, 64);
    std::uint64_t b = arena.alloc(64);
    EXPECT_EQ(a, b); // freelist hit
    std::uint64_t c = arena.alloc(128);
    EXPECT_NE(c, b);
}

TEST(MemoryBladeTest, ArenaSizeClassesSeparate)
{
    memblade::RemoteArena arena(0, 100000);
    std::uint64_t small = arena.alloc(16);
    arena.free(small, 16);
    std::uint64_t big = arena.alloc(512);
    EXPECT_NE(small, big); // different class must not reuse the 16 B block
}
