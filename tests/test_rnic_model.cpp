/**
 * @file
 * Unit tests for the RNIC hardware model: memory registration, one-sided
 * op execution semantics (READ/WRITE/CAS/FAA on real bytes), cache models,
 * traffic accounting, and the performance ceilings the paper's platform
 * exhibits.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rnic/cache_model.hpp"
#include "rnic/rnic.hpp"
#include "sim/simulator.hpp"

using namespace smart;
using namespace smart::rnic;
using sim::Simulator;
using sim::Time;

namespace {

/** Captures completions for assertions. */
struct TestSink : CompletionSink
{
    std::vector<std::uint64_t> wrIds;
    std::vector<std::uint64_t> oldValues;
    Time lastCompletion = 0;
    Simulator *sim = nullptr;

    void
    complete(const WorkReq &wr, std::uint64_t old_value,
             WcStatus) override
    {
        wrIds.push_back(wr.wrId);
        oldValues.push_back(old_value);
        if (sim)
            lastCompletion = sim->now();
    }
};

struct RnicPair
{
    Simulator sim;
    RnicConfig cfg;
    Rnic initiator;
    Rnic target;
    std::vector<std::uint8_t> localMem;
    std::vector<std::uint8_t> remoteMem;
    const MrRecord *localMr;
    const MrRecord *remoteMr;
    TestSink sink;

    RnicPair()
        : initiator(sim, cfg, "cb"), target(sim, cfg, "mb"),
          localMem(4096, 0), remoteMem(8192, 0)
    {
        localMr = &initiator.registerMemory(localMem.data(), localMem.size());
        remoteMr = &target.registerMemory(remoteMem.data(), remoteMem.size());
        sink.sim = &sim;
    }

    WorkReq
    makeWr(Op op, std::uint64_t remote_off, std::uint8_t *local,
           std::uint32_t len)
    {
        WorkReq wr;
        wr.op = op;
        wr.rkey = remoteMr->rkey;
        wr.remoteOffset = remote_off;
        wr.localBuf = local;
        wr.length = len;
        wr.localTransKey = Rnic::transKey(localMr->id, 0);
        wr.sink = &sink;
        return wr;
    }
};

} // namespace

TEST(RnicMemory, RegisterAndFind)
{
    Simulator sim;
    RnicConfig cfg;
    Rnic rnic(sim, cfg, "r");
    std::vector<std::uint8_t> mem(1024);
    const MrRecord &mr = rnic.registerMemory(mem.data(), mem.size());
    EXPECT_EQ(rnic.findMr(mr.rkey), &mr);
    EXPECT_EQ(rnic.findMr(mr.rkey + 1), nullptr);
    EXPECT_EQ(mr.length, 1024u);
}

TEST(RnicMemory, DistinctMrIdsPerRegistration)
{
    Simulator sim;
    RnicConfig cfg;
    Rnic rnic(sim, cfg, "r");
    std::vector<std::uint8_t> mem(1024);
    const MrRecord &a = rnic.registerMemory(mem.data(), mem.size());
    const MrRecord &b = rnic.registerMemory(mem.data(), mem.size());
    EXPECT_NE(a.id, b.id);
    EXPECT_NE(a.rkey, b.rkey);
}

TEST(RnicMemory, TransKeySeparates2MbPages)
{
    EXPECT_EQ(Rnic::transKey(1, 0), Rnic::transKey(1, (1 << 21) - 1));
    EXPECT_NE(Rnic::transKey(1, 0), Rnic::transKey(1, 1 << 21));
    EXPECT_NE(Rnic::transKey(1, 0), Rnic::transKey(2, 0));
}

TEST(RnicOps, WriteThenReadRoundTrip)
{
    RnicPair p;
    const char msg[8] = "hi smar";
    std::memcpy(p.localMem.data(), msg, 8);

    WorkReq wr = p.makeWr(Op::Write, 256, p.localMem.data(), 8);
    p.initiator.postBatch(&p.target, {wr});
    p.sim.run();
    ASSERT_EQ(p.sink.wrIds.size(), 1u);
    EXPECT_EQ(std::memcmp(p.remoteMem.data() + 256, msg, 8), 0);

    WorkReq rd = p.makeWr(Op::Read, 256, p.localMem.data() + 64, 8);
    p.initiator.postBatch(&p.target, {rd});
    p.sim.run();
    EXPECT_EQ(std::memcmp(p.localMem.data() + 64, msg, 8), 0);
}

TEST(RnicOps, CasSucceedsOnMatch)
{
    RnicPair p;
    std::uint64_t initial = 42;
    std::memcpy(p.remoteMem.data() + 128, &initial, 8);

    std::uint64_t result = 0;
    WorkReq wr = p.makeWr(Op::Cas, 128,
                          reinterpret_cast<std::uint8_t *>(&result), 8);
    wr.compare = 42;
    wr.swap = 99;
    p.initiator.postBatch(&p.target, {wr});
    p.sim.run();

    EXPECT_EQ(result, 42u); // old value returned
    std::uint64_t now_val = 0;
    std::memcpy(&now_val, p.remoteMem.data() + 128, 8);
    EXPECT_EQ(now_val, 99u); // swapped
}

TEST(RnicOps, CasFailsOnMismatchAndDoesNotWrite)
{
    RnicPair p;
    std::uint64_t initial = 7;
    std::memcpy(p.remoteMem.data() + 128, &initial, 8);

    std::uint64_t result = 0;
    WorkReq wr = p.makeWr(Op::Cas, 128,
                          reinterpret_cast<std::uint8_t *>(&result), 8);
    wr.compare = 42; // wrong expectation
    wr.swap = 99;
    p.initiator.postBatch(&p.target, {wr});
    p.sim.run();

    EXPECT_EQ(result, 7u);
    std::uint64_t now_val = 0;
    std::memcpy(&now_val, p.remoteMem.data() + 128, 8);
    EXPECT_EQ(now_val, 7u); // unchanged
}

TEST(RnicOps, FaaAddsAndReturnsOld)
{
    RnicPair p;
    std::uint64_t initial = 100;
    std::memcpy(p.remoteMem.data() + 8, &initial, 8);

    std::uint64_t result = 0;
    WorkReq wr = p.makeWr(Op::Faa, 8,
                          reinterpret_cast<std::uint8_t *>(&result), 8);
    wr.compare = 5; // addend
    p.initiator.postBatch(&p.target, {wr});
    p.sim.run();

    EXPECT_EQ(result, 100u);
    std::uint64_t now_val = 0;
    std::memcpy(&now_val, p.remoteMem.data() + 8, 8);
    EXPECT_EQ(now_val, 105u);
}

TEST(RnicOps, ConcurrentCasOnlyOneWins)
{
    RnicPair p;
    std::uint64_t initial = 0;
    std::memcpy(p.remoteMem.data(), &initial, 8);

    std::vector<std::uint64_t> results(8, 0);
    std::vector<WorkReq> batch;
    for (int i = 0; i < 8; ++i) {
        WorkReq wr = p.makeWr(
            Op::Cas, 0, reinterpret_cast<std::uint8_t *>(&results[i]), 8);
        wr.compare = 0;
        wr.swap = 1000 + i;
        wr.wrId = i;
        batch.push_back(wr);
    }
    p.initiator.postBatch(&p.target, std::move(batch));
    p.sim.run();

    int winners = 0;
    for (int i = 0; i < 8; ++i) {
        if (results[i] == 0)
            ++winners;
    }
    EXPECT_EQ(winners, 1); // exactly one CAS observed the expected value
}

TEST(RnicOps, ReadSnapshotsAtTargetNotAtCompletion)
{
    // A READ must return bytes as they were at target-DMA time even if a
    // later WRITE lands before the READ's completion is delivered.
    RnicPair p;
    std::uint64_t v1 = 11;
    std::memcpy(p.remoteMem.data(), &v1, 8);

    std::uint64_t read_result = 0;
    WorkReq rd = p.makeWr(Op::Read, 0,
                          reinterpret_cast<std::uint8_t *>(&read_result), 8);
    p.initiator.postBatch(&p.target, {rd});
    p.sim.run();
    EXPECT_EQ(read_result, 11u);
}

TEST(RnicOps, CompletionLatencyIsMicrosecondScale)
{
    RnicPair p;
    WorkReq rd = p.makeWr(Op::Read, 0, p.localMem.data(), 8);
    p.initiator.postBatch(&p.target, {rd});
    p.sim.run();
    // Unloaded round-trip on the modelled platform: ~1-3 us.
    EXPECT_GT(p.sink.lastCompletion, 800u);
    EXPECT_LT(p.sink.lastCompletion, 4000u);
}

TEST(RnicOps, OwrAccountingReturnsToZero)
{
    RnicPair p;
    std::vector<WorkReq> batch;
    for (int i = 0; i < 16; ++i)
        batch.push_back(p.makeWr(Op::Read, 64 * i, p.localMem.data(), 8));
    p.initiator.postBatch(&p.target, std::move(batch));
    EXPECT_EQ(p.initiator.owrNow(), 16u);
    p.sim.run();
    EXPECT_EQ(p.initiator.owrNow(), 0u);
    EXPECT_EQ(p.initiator.perf().wrsCompleted.value(), 16u);
    EXPECT_EQ(p.target.perf().wrsServed.value(), 16u);
}

TEST(RnicOps, DramTrafficAccountedBothSides)
{
    RnicPair p;
    WorkReq rd = p.makeWr(Op::Read, 0, p.localMem.data(), 8);
    p.initiator.postBatch(&p.target, {rd});
    p.sim.run();
    // Initiator pays WQE fetch + CQE + payload landing; target pays the
    // payload DMA read.
    EXPECT_GT(p.initiator.perf().dramBytes.value(), 0u);
    EXPECT_GT(p.target.perf().dramBytes.value(), 0u);
    EXPECT_GT(p.initiator.dramBytesPerWr(), 64.0);
}

TEST(RnicOps, WqeHitProbDropsAboveCapacity)
{
    Simulator sim;
    RnicConfig cfg;
    Rnic rnic(sim, cfg, "r");
    EXPECT_DOUBLE_EQ(rnic.wqeHitProb(), 1.0);
    // wqeHitProb is a pure function of owrNow; exercise it via config.
    EXPECT_GT(cfg.wqeCacheCapacity, 0u);
}

// --------------------------------------------------------------- caches

TEST(RandomReplaceCache, HitsWithinCapacity)
{
    RandomReplaceCache cache(8);
    for (std::uint64_t k = 0; k < 8; ++k)
        cache.insert(k);
    for (std::uint64_t k = 0; k < 8; ++k)
        EXPECT_TRUE(cache.lookupRemove(k));
    EXPECT_EQ(cache.hits(), 8u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(RandomReplaceCache, EvictsWhenOversubscribed)
{
    RandomReplaceCache cache(8);
    for (std::uint64_t k = 0; k < 32; ++k)
        cache.insert(k);
    EXPECT_EQ(cache.size(), 8u);
    int hits = 0;
    for (std::uint64_t k = 0; k < 32; ++k) {
        if (cache.lookupRemove(k))
            ++hits;
    }
    EXPECT_EQ(hits, 8);
    EXPECT_LT(cache.hitRatio(), 0.5);
}

TEST(RandomReplaceCache, DuplicateInsertIgnored)
{
    RandomReplaceCache cache(4);
    cache.insert(1);
    cache.insert(1);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_TRUE(cache.lookupRemove(1));
    EXPECT_FALSE(cache.lookupRemove(1));
}

TEST(LruCache, EvictsLeastRecentlyUsed)
{
    LruCache cache(3);
    EXPECT_FALSE(cache.access(1));
    EXPECT_FALSE(cache.access(2));
    EXPECT_FALSE(cache.access(3));
    EXPECT_TRUE(cache.access(1));  // 1 now MRU; order: 1,3,2
    EXPECT_FALSE(cache.access(4)); // evicts 2
    EXPECT_TRUE(cache.access(1));
    EXPECT_TRUE(cache.access(3));
    EXPECT_FALSE(cache.access(2)); // was evicted
}

TEST(LruCache, HitRatioTracksAccesses)
{
    LruCache cache(100);
    for (std::uint64_t k = 0; k < 100; ++k)
        cache.access(k);
    for (std::uint64_t k = 0; k < 100; ++k)
        cache.access(k);
    EXPECT_DOUBLE_EQ(cache.hitRatio(), 0.5);
    cache.resetStats();
    cache.access(0);
    EXPECT_DOUBLE_EQ(cache.hitRatio(), 1.0);
}

// ------------------------------------------------------- platform limits

namespace {

/** Floods the RNIC pair with reads and measures completed WRs. */
double
floodMops(std::uint32_t outstanding, std::uint32_t block)
{
    RnicPair p;
    // Keep `outstanding` reads in flight by reposting from the sink.
    // Repost in batches of 8 (doorbell batching, as real initiators do —
    // singleton posts pay a whole WQE-fetch chunk per WR).
    struct Reposter : CompletionSink
    {
        RnicPair *pair;
        std::uint32_t block;
        std::uint64_t completed = 0;
        std::vector<WorkReq> pendingRepost;

        void
        complete(const WorkReq &wr, std::uint64_t, WcStatus) override
        {
            ++completed;
            WorkReq next = wr;
            next.sink = this;
            pendingRepost.push_back(next);
            if (pendingRepost.size() >= 8) {
                pair->initiator.postBatch(&pair->target,
                                          std::move(pendingRepost));
                pendingRepost.clear();
            }
        }
    } reposter;
    reposter.pair = &p;
    reposter.block = block;

    std::vector<WorkReq> batch;
    for (std::uint32_t i = 0; i < outstanding; ++i) {
        WorkReq wr = p.makeWr(Op::Read, 0, nullptr, block);
        wr.sink = &reposter;
        batch.push_back(wr);
    }
    p.initiator.postBatch(&p.target, std::move(batch));
    p.sim.runUntil(sim::msec(2));
    return static_cast<double>(reposter.completed) / 2000.0;
}

} // namespace

TEST(RnicLimits, SmallReadIopsCapsNear110Mops)
{
    double mops = floodMops(256, 8);
    EXPECT_GT(mops, 95.0);
    EXPECT_LT(mops, 120.0);
}

TEST(RnicLimits, LargeReadsAreBandwidthBound)
{
    double mops = floodMops(256, 1024);
    // PCIe 3.0 x16 (~16 GB/s) at the target: ~15 MOP/s of 1 KB reads.
    EXPECT_LT(mops, 17.0);
    EXPECT_GT(mops, 8.0);
}

TEST(RnicLimits, AtomicsCapBelowReads)
{
    RnicPair p;
    struct Reposter : CompletionSink
    {
        RnicPair *pair;
        std::uint64_t completed = 0;
        void
        complete(const WorkReq &wr, std::uint64_t, WcStatus) override
        {
            ++completed;
            WorkReq next = wr;
            next.sink = this;
            pair->initiator.postBatch(&pair->target, {next});
        }
    } reposter;
    reposter.pair = &p;
    std::vector<WorkReq> batch;
    for (int i = 0; i < 256; ++i) {
        WorkReq wr = p.makeWr(Op::Faa, 0, nullptr, 8);
        wr.compare = 1;
        wr.sink = &reposter;
        batch.push_back(wr);
    }
    p.initiator.postBatch(&p.target, std::move(batch));
    p.sim.runUntil(sim::msec(2));
    double mops = static_cast<double>(reposter.completed) / 2000.0;
    EXPECT_LT(mops, 70.0); // atomic units are the bottleneck
    EXPECT_GT(mops, 30.0);
}
