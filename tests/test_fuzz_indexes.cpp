/**
 * @file
 * Reference-model fuzzing: drive the RACE hash table and the Sherman
 * B+Tree with long random operation sequences (seed-parameterized) and
 * check every result against an in-memory reference map. Catches
 * protocol bugs that targeted unit tests miss.
 */

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "apps/race/race.hpp"
#include "apps/sherman/btree.hpp"
#include "harness/testbed.hpp"

using namespace smart;
using namespace smart::harness;
using sim::Task;

namespace {

class FuzzSeed : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(FuzzSeed, RaceMatchesReferenceMap)
{
    TestbedConfig cfg;
    cfg.computeBlades = 1;
    cfg.memoryBlades = 2;
    cfg.threadsPerBlade = 1;
    cfg.bladeBytes = 256ull << 20;
    cfg.smart = presets::full();
    Testbed tb(cfg);
    std::vector<memblade::MemoryBlade *> blades{&tb.memBlade(0),
                                                &tb.memBlade(1)};
    race::RaceConfig rcfg;
    rcfg.initialDepth = 2;
    rcfg.groupsPerSegment = 8;
    race::RaceTable table(blades, rcfg);
    race::RaceClient client(table, tb.compute(0));

    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    bool finished = false;

    tb.compute(0).spawnWorker(0, [&](SmartCtx &ctx) -> Task {
        sim::Rng rng(GetParam());
        for (int i = 0; i < 600; ++i) {
            std::uint64_t key = rng.uniform(200); // dense: collisions
            double p = rng.uniformDouble();
            if (p < 0.45) {
                std::uint64_t v = rng.next64() | 1;
                race::OpResult res;
                co_await client.insert(ctx, key, v, res);
                EXPECT_TRUE(res.ok);
                ref[key] = v;
            } else if (p < 0.6) {
                race::OpResult res;
                co_await client.remove(ctx, key, res);
                EXPECT_EQ(res.ok, ref.erase(key) > 0) << "key " << key;
            } else {
                race::OpResult res;
                co_await client.lookup(ctx, key, res);
                auto it = ref.find(key);
                EXPECT_EQ(res.ok, it != ref.end()) << "key " << key;
                if (res.ok && it != ref.end()) {
                    EXPECT_EQ(res.value, it->second) << "key " << key;
                }
            }
        }
        finished = true;
    });
    tb.sim().runUntil(sim::sec(20));
    ASSERT_TRUE(finished);

    // Full sweep: host view equals the reference.
    for (const auto &[k, v] : ref) {
        std::uint64_t got = 0;
        ASSERT_TRUE(table.hostLookup(k, got)) << k;
        EXPECT_EQ(got, v) << k;
    }
}

TEST_P(FuzzSeed, BtreeMatchesReferenceMap)
{
    TestbedConfig cfg;
    cfg.computeBlades = 1;
    cfg.memoryBlades = 2;
    cfg.threadsPerBlade = 1;
    cfg.bladeBytes = 256ull << 20;
    cfg.smart = presets::full();
    Testbed tb(cfg);
    std::vector<memblade::MemoryBlade *> blades{&tb.memBlade(0),
                                                &tb.memBlade(1)};
    sherman::BtreeConfig bcfg;
    bcfg.speculativeLookup = (GetParam() & 1) != 0; // alternate fast path
    sherman::BtreeIndex index(blades, bcfg);
    index.loadSequential(100, 0x11);
    sherman::BtreeClient client(index, tb.compute(0));

    std::map<std::uint64_t, std::uint64_t> ref;
    for (std::uint64_t k = 0; k < 100; ++k)
        ref[k] = k ^ 0x11;
    bool finished = false;

    tb.compute(0).spawnWorker(0, [&](SmartCtx &ctx) -> Task {
        sim::Rng rng(GetParam() ^ 0xb7ee);
        for (int i = 0; i < 500; ++i) {
            std::uint64_t key = rng.uniform(300); // forces splits
            double p = rng.uniformDouble();
            if (p < 0.45) {
                std::uint64_t v = rng.next64() | 1;
                sherman::BtOpResult res;
                co_await client.insert(ctx, key, v, res);
                EXPECT_TRUE(res.ok);
                ref[key] = v;
            } else if (p < 0.55) {
                sherman::BtOpResult res;
                co_await client.remove(ctx, key, res);
                EXPECT_EQ(res.ok, ref.erase(key) > 0) << "key " << key;
            } else if (p < 0.9) {
                sherman::BtOpResult res;
                co_await client.lookup(ctx, key, res);
                auto it = ref.find(key);
                EXPECT_EQ(res.ok, it != ref.end()) << "key " << key;
                if (res.ok && it != ref.end()) {
                    EXPECT_EQ(res.value, it->second) << "key " << key;
                }
            } else {
                std::vector<sherman::Entry> out;
                sherman::BtOpResult res;
                co_await client.scan(ctx, key, 10, out, res);
                auto it = ref.lower_bound(key);
                for (const sherman::Entry &e : out) {
                    if (it == ref.end())
                        break; // tree may hold keys added after the scan
                    EXPECT_EQ(e.key, it->first);
                    EXPECT_EQ(e.value, it->second);
                    ++it;
                }
            }
        }
        finished = true;
    });
    tb.sim().runUntil(sim::sec(30));
    ASSERT_TRUE(finished);

    EXPECT_EQ(index.hostCount(), ref.size());
    for (const auto &[k, v] : ref) {
        std::uint64_t got = 0;
        ASSERT_TRUE(index.hostLookup(k, got)) << k;
        EXPECT_EQ(got, v) << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));
