/**
 * @file
 * Reproduces paper Figure 3: throughput of 8-byte READ/WRITE under the
 * four QP allocation policies (shared QP, multiplexed QP, per-thread QP,
 * per-thread doorbell) as the thread count grows. Concurrency depth is 8
 * outstanding WRs per thread, matching §3.1.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/rdma_bench.hpp"
#include "sim/table.hpp"

using namespace smart;
using namespace smart::harness;

int
main(int argc, char **argv)
{
    bool quick = argc > 1 && std::string(argv[1]) == "--quick";

    std::vector<std::uint32_t> threads =
        quick ? std::vector<std::uint32_t>{8, 32, 96}
              : std::vector<std::uint32_t>{1, 2, 4, 8, 16, 24, 32,
                                           48, 64, 80, 96};
    const std::vector<QpPolicy> policies = {
        QpPolicy::SharedQp, QpPolicy::MultiplexedQp, QpPolicy::PerThreadQp,
        QpPolicy::PerThreadDb};

    for (rnic::Op op : {rnic::Op::Read, rnic::Op::Write}) {
        const char *op_name = op == rnic::Op::Read ? "READ" : "WRITE";
        std::cout << "== Figure 3: 8-byte " << op_name
                  << " throughput (MOP/s), depth=8 ==\n";
        sim::Table table({"threads", "shared-qp", "multiplexed-qp",
                          "per-thread-qp", "per-thread-db"});
        for (std::uint32_t t : threads) {
            table.row().cell(static_cast<std::uint64_t>(t));
            for (QpPolicy policy : policies) {
                TestbedConfig cfg;
                cfg.computeBlades = 1;
                cfg.memoryBlades = 1;
                cfg.threadsPerBlade = t;
                cfg.smart = presets::baseline(); // §3: no SMART features
                cfg.smart.qpPolicy = policy;
                cfg.smart.corosPerThread = 1;

                RdmaBenchParams params;
                params.op = op;
                params.blockSize = 8;
                params.depth = 8;
                if (quick)
                    params.measureNs = sim::msec(2);

                RdmaBenchResult r = runRdmaBench(cfg, params);
                table.cell(r.mops, 1);
            }
        }
        table.print();
        table.writeCsv(std::string("fig03_") +
                       (op == rnic::Op::Read ? "read" : "write") + ".csv");
        std::cout << "\n";
    }
    std::cout << "Paper shape: per-thread QP/DB dominate below 32 threads "
                 "(2.4x-130x over multiplexing); per-thread QP collapses "
                 "beyond 32 threads (halved by 96); per-thread doorbell "
                 "sustains ~110 MOP/s for READs.\n";
    return 0;
}
