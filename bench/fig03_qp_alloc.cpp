/**
 * @file
 * Reproduces paper Figure 3: throughput of 8-byte READ/WRITE under the
 * four QP allocation policies (shared QP, multiplexed QP, per-thread QP,
 * per-thread doorbell) as the thread count grows. Concurrency depth is 8
 * outstanding WRs per thread, matching §3.1.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "harness/rdma_bench.hpp"
#include "sim/table.hpp"

using namespace smart;
using namespace smart::harness;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv, "fig03_qp_alloc");

    std::vector<std::uint32_t> threads =
        cli.quick() ? std::vector<std::uint32_t>{8, 32, 96}
                    : std::vector<std::uint32_t>{1, 2, 4, 8, 16, 24, 32,
                                                 48, 64, 80, 96};
    const std::vector<QpPolicy> policies = {
        QpPolicy::SharedQp, QpPolicy::MultiplexedQp, QpPolicy::PerThreadQp,
        QpPolicy::PerThreadDb};
    std::uint32_t max_threads = threads.back();

    for (rnic::Op op : {rnic::Op::Read, rnic::Op::Write}) {
        const char *op_name = op == rnic::Op::Read ? "READ" : "WRITE";
        std::cout << "== Figure 3: 8-byte " << op_name
                  << " throughput (MOP/s), depth=8 ==\n";
        sim::Table table({"threads", "shared-qp", "multiplexed-qp",
                          "per-thread-qp", "per-thread-db"});
        for (std::uint32_t t : threads) {
            table.row().cell(static_cast<std::uint64_t>(t));
            for (QpPolicy policy : policies) {
                TestbedConfig cfg;
                cfg.computeBlades = 1;
                cfg.memoryBlades = 1;
                cfg.threadsPerBlade = t;
                cfg.smart = presets::baseline() // §3: no SMART features
                                .withQpPolicy(policy)
                                .withCoros(1);
                cli.configureShards(cfg);

                RdmaBenchParams params;
                params.op = op;
                params.blockSize = 8;
                params.depth = 8;
                params.seed = cli.seed();
                if (cli.quick())
                    params.measureNs = sim::msec(2);

                // One capture per policy (at the max thread count) keeps
                // the report small while covering every configuration.
                RunCapture *cap =
                    t == max_threads
                        ? cli.nextCapture(std::string(op_name) + "/" +
                                          qpPolicyName(policy) + "/t" +
                                          std::to_string(t))
                        : nullptr;
                RdmaBenchResult r = runRdmaBench(cfg, params, cap);
                table.cell(r.mops, 1);
            }
        }
        cli.addTable(std::string("fig03_") +
                         (op == rnic::Op::Read ? "read" : "write"),
                     table);
        std::cout << "\n";
    }
    cli.note("Paper shape: per-thread QP/DB dominate below 32 threads "
             "(2.4x-130x over multiplexing); per-thread QP collapses "
             "beyond 32 threads (halved by 96); per-thread doorbell "
             "sustains ~110 MOP/s for READs.");
    return cli.finish();
}
