/**
 * @file
 * Reproduces paper Figure 10: committed-transaction throughput of
 * FORD+ vs SMART-DTX on SmallBank and TATP as the thread count grows.
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "harness/dtx_bench.hpp"
#include "sim/table.hpp"

using namespace smart;
using namespace smart::harness;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv, "fig10_dtx");

    std::vector<std::uint32_t> threads =
        cli.quick() ? std::vector<std::uint32_t>{24, 96}
                    : std::vector<std::uint32_t>{8, 16, 24, 32, 40, 48,
                                                 56, 64, 72, 80, 96};

    for (DtxWorkload w : {DtxWorkload::SmallBank, DtxWorkload::Tatp}) {
        std::cout << "== Figure 10 (" << dtxWorkloadName(w)
                  << "): committed Mtxn/s vs threads ==\n";
        sim::Table t({"threads", "FORD+", "SMART-DTX", "FORD+_aborts/txn",
                      "SMART_aborts/txn"});
        for (std::uint32_t thr : threads) {
            bool last = thr == threads.back();
            DtxBenchParams p;
            p.workload = w;
            p.threads = thr;
            p.seed = cli.seed();
            p.spanSampleEvery = cli.spanSampleEvery();
            p.shards = cli.shards();
            p.numAccounts = cli.quick() ? 20'000 : 100'000;
            p.measureNs = cli.quick() ? sim::msec(2) : sim::msec(4);
            p.smartOn = false;
            DtxBenchResult base = runDtxBench(
                p, last ? cli.nextCapture(std::string("FORD+/") +
                                          dtxWorkloadName(w))
                        : nullptr);
            p.smartOn = true;
            DtxBenchResult sm = runDtxBench(
                p, last ? cli.nextCapture(std::string("SMART-DTX/") +
                                          dtxWorkloadName(w))
                        : nullptr);
            t.row()
                .cell(static_cast<std::uint64_t>(thr))
                .cell(base.mtps, 2)
                .cell(sm.mtps, 2)
                .cell(base.abortRate, 2)
                .cell(sm.abortRate, 2);
        }
        cli.addTable(std::string("fig10_") + dtxWorkloadName(w), t);
        std::cout << "\n";
    }
    cli.note("Paper shape: FORD+ peaks at 24 (SmallBank) / 32 (TATP) "
             "threads then degrades from doorbell contention; "
             "SMART-DTX keeps scaling (up to 5.2x on SmallBank, 2.6x "
             "on TATP at 96 threads).");
    return cli.finish();
}
