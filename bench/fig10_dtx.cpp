/**
 * @file
 * Reproduces paper Figure 10: committed-transaction throughput of
 * FORD+ vs SMART-DTX on SmallBank and TATP as the thread count grows.
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/dtx_bench.hpp"
#include "sim/table.hpp"

using namespace smart;
using namespace smart::harness;

int
main(int argc, char **argv)
{
    bool quick = argc > 1 && std::string(argv[1]) == "--quick";

    std::vector<std::uint32_t> threads =
        quick ? std::vector<std::uint32_t>{24, 96}
              : std::vector<std::uint32_t>{8, 16, 24, 32, 40, 48, 56, 64,
                                           72, 80, 96};

    for (DtxWorkload w : {DtxWorkload::SmallBank, DtxWorkload::Tatp}) {
        std::cout << "== Figure 10 (" << dtxWorkloadName(w)
                  << "): committed Mtxn/s vs threads ==\n";
        sim::Table t({"threads", "FORD+", "SMART-DTX", "FORD+_aborts/txn",
                      "SMART_aborts/txn"});
        for (std::uint32_t thr : threads) {
            DtxBenchParams p;
            p.workload = w;
            p.threads = thr;
            p.numAccounts = quick ? 20'000 : 100'000;
            p.measureNs = quick ? sim::msec(2) : sim::msec(4);
            p.smartOn = false;
            DtxBenchResult base = runDtxBench(p);
            p.smartOn = true;
            DtxBenchResult sm = runDtxBench(p);
            t.row()
                .cell(static_cast<std::uint64_t>(thr))
                .cell(base.mtps, 2)
                .cell(sm.mtps, 2)
                .cell(base.abortRate, 2)
                .cell(sm.abortRate, 2);
        }
        t.print();
        t.writeCsv(std::string("fig10_") + dtxWorkloadName(w) + ".csv");
        std::cout << "\n";
    }
    std::cout << "Paper shape: FORD+ peaks at 24 (SmallBank) / 32 (TATP) "
                 "threads then degrades from doorbell contention; "
                 "SMART-DTX keeps scaling (up to 5.2x on SmallBank, 2.6x "
                 "on TATP at 96 threads).\n";
    return 0;
}
