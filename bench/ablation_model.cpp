/**
 * @file
 * Model ablations: sensitivity of the two reproduced §3 phenomena to the
 * calibration constants this reproduction had to invent (the paper's
 * vendor-confidential parameters). Shows the shapes are robust regions:
 *
 *  (a) doorbell collapse of per-thread-QP at 96 threads vs the
 *      cache-line bounce cost;
 *  (b) deep-OWR throughput collapse vs the WQE-cache capacity;
 *  (c) the §4.1 fix (per-thread doorbells) stays at the hardware limit
 *      across the whole sweep — SMART's win does not depend on the
 *      constants chosen.
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "harness/rdma_bench.hpp"
#include "sim/table.hpp"

using namespace smart;
using namespace smart::harness;

namespace {

std::uint64_t g_seed = 0;   // from BenchCli --seed
std::uint32_t g_shards = 1; // from BenchCli --shards

double
run(const rnic::RnicConfig &hw, QpPolicy policy, std::uint32_t depth,
    RunCapture *cap = nullptr)
{
    TestbedConfig cfg;
    cfg.hw = hw;
    cfg.computeBlades = 1;
    cfg.memoryBlades = 1;
    cfg.threadsPerBlade = 96;
    cfg.smart = presets::baseline().withQpPolicy(policy).withCoros(1);
    cfg.shards = g_shards;
    RdmaBenchParams p;
    p.depth = depth;
    p.seed = g_seed;
    p.measureNs = sim::msec(2);
    return runRdmaBench(cfg, p, cap).mops;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv, "ablation_model");
    g_seed = cli.seed();
    g_shards = cli.shards();
    bool quick = cli.quick();

    std::cout << "== Ablation (a): doorbell bounce cost vs per-thread-QP "
                 "collapse (96 threads, depth 8) ==\n";
    sim::Table a({"bounce_ns", "per-thread-qp", "per-thread-db",
                  "qp/db_ratio"});
    std::vector<std::uint64_t> bounces =
        quick ? std::vector<std::uint64_t>{140, 280}
              : std::vector<std::uint64_t>{70, 140, 210, 280, 420, 560};
    for (std::uint64_t b : bounces) {
        rnic::RnicConfig hw;
        hw.lockBouncePerWaiterNs = b;
        bool last = b == bounces.back();
        double qp = run(hw, QpPolicy::PerThreadQp, 8,
                        last ? cli.nextCapture("per-thread-qp/bounce" +
                                               std::to_string(b))
                             : nullptr);
        double db = run(hw, QpPolicy::PerThreadDb, 8);
        a.row()
            .cell(b)
            .cell(qp, 1)
            .cell(db, 1)
            .cell(db > 0 ? qp / db : 0.0, 2);
    }
    cli.addTable("ablation_bounce", a);

    std::cout << "\n== Ablation (b): WQE cache capacity vs deep-OWR "
                 "collapse (96 threads, depth 32) ==\n";
    sim::Table t({"wqe_capacity", "depth8", "depth32", "collapse"});
    std::vector<std::uint32_t> caps =
        quick ? std::vector<std::uint32_t>{600}
              : std::vector<std::uint32_t>{300, 450, 600, 900, 1500,
                                           3000};
    for (std::uint32_t c : caps) {
        rnic::RnicConfig hw;
        hw.wqeCacheCapacity = c;
        double shallow = run(hw, QpPolicy::PerThreadDb, 8);
        double deep = run(hw, QpPolicy::PerThreadDb, 32);
        t.row()
            .cell(static_cast<std::uint64_t>(c))
            .cell(shallow, 1)
            .cell(deep, 1)
            .cell(shallow > 0 ? deep / shallow : 0.0, 2);
    }
    cli.addTable("ablation_wqe", t);

    cli.note("\nTakeaway: the per-thread-QP collapse and deep-OWR "
             "collapse persist across wide constant ranges, and the "
             "SMART configurations stay at the hardware limit "
             "throughout; only the collapse magnitude moves.");
    return cli.finish();
}
