/**
 * @file
 * Open-loop knee curves: latency vs offered load for the hash-table and
 * B+Tree apps under multi-tenant arrival processes (DESIGN §13).
 *
 * For each app the bench first measures closed-loop capacity at the same
 * testbed shape, then sweeps offered load from 0.2x to 1.4x of it with
 * three tenants (web: Poisson / read-heavy / weight 2, batch: diurnal /
 * write-heavy, burst: spiky / insert-heavy), reporting the
 * p50/p99/p999-vs-offered-load curve, the knee (first point where p99
 * exceeds 3x its low-load value), and the overload point where requests
 * are shed or the per-blade degradation ladder engages.
 *
 * --churn adds an arm that runs a partitioned raw workload behind the
 * same driver at 0.9x capacity and drains + rejoins a memory blade
 * mid-measure through the MembershipPlane (fenced ops retried, never
 * surfaced as failed).
 *
 * Gates (exit 1 on violation):
 *  - per app, p99 is monotonically non-decreasing (5% tolerance) up to
 *    the knee;
 *  - the 1.4x point sheds load or engages the degradation ladder;
 *  - with --churn, zero ops surface as failed across the membership
 *    events.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/race/race.hpp"
#include "apps/sherman/btree.hpp"
#include "harness/bench_cli.hpp"
#include "harness/ht_bench.hpp"
#include "harness/open_loop.hpp"
#include "harness/testbed.hpp"
#include "smart/membership.hpp"
#include "smart/smart_ctx.hpp"

using namespace smart;
using namespace smart::harness;
using sim::Task;
using sim::Time;

namespace {

struct Shape
{
    std::uint32_t threads = 8;
    std::uint32_t coros = 4;
    std::uint64_t numKeys = 100'000;
    Time warmupNs = sim::msec(2);
    Time measureNs = sim::msec(6);
};

/** One app instance on its own testbed, exposed as a ServiceFn. */
struct Rig
{
    std::unique_ptr<Testbed> tb;
    std::unique_ptr<race::RaceTable> ht;
    std::unique_ptr<race::RaceClient> htClient;
    std::unique_ptr<sherman::BtreeIndex> bt;
    std::unique_ptr<sherman::BtreeClient> btClient;
    ServiceFn service;
};

Rig
makeRig(const std::string &app, const Shape &sh, BenchCli &cli,
        RunCapture *cap)
{
    Rig rig;
    TestbedConfig cfg;
    cfg.computeBlades = 1;
    cfg.memoryBlades = 2;
    cfg.threadsPerBlade = sh.threads;
    cfg.bladeBytes = app == "bt" ? (2ull << 30) : (1ull << 30);
    cfg.smart = presets::full();
    cfg.smart.withBenchTimescale();
    cfg.smart.withOverloadWatermarks(48, 96);
    cli.configureCache(cfg.smart);
    cfg.smart.corosPerThread = sh.coros;
    cli.configureShards(cfg);
    if (cap != nullptr) {
        cfg.traceSampleNs = sim::usec(500);
        cli.configureSpans(cfg);
        cli.configureTimeline(cfg);
    }
    rig.tb = std::make_unique<Testbed>(cfg);
    Testbed &tb = *rig.tb;

    std::vector<memblade::MemoryBlade *> blades;
    for (std::uint32_t i = 0; i < tb.numMemBlades(); ++i)
        blades.push_back(&tb.memBlade(i));

    SmartRuntime *rt = &tb.compute(0);
    if (app == "ht") {
        rig.ht = std::make_unique<race::RaceTable>(
            blades, sizedRaceConfig(sh.numKeys));
        for (std::uint64_t k = 0; k < sh.numKeys; ++k)
            rig.ht->loadInsert(k, k);
        rig.htClient = std::make_unique<race::RaceClient>(*rig.ht, *rt);
        race::RaceClient *cl = rig.htClient.get();
        rig.service = [cl, rt](SmartCtx &ctx,
                               const workload::YcsbRequest &req,
                               std::uint32_t &retries) -> Task {
            Time start = ctx.sim().now();
            race::OpResult res;
            if (req.op == workload::YcsbOp::Lookup)
                co_await cl->lookup(ctx, req.key, res);
            else
                co_await cl->update(ctx, req.key, req.key ^ 0x5eedull, res);
            ctx.runtime().recordOp(ctx.sim().now() - start, res.retries);
            retries = res.retries;
        };
    } else {
        sherman::BtreeConfig bcfg;
        bcfg.speculativeLookup = true;
        rig.bt = std::make_unique<sherman::BtreeIndex>(blades, bcfg);
        rig.bt->loadSequential(sh.numKeys, 0x5a5aull);
        rig.btClient = std::make_unique<sherman::BtreeClient>(*rig.bt, *rt);
        sherman::BtreeClient *cl = rig.btClient.get();
        rig.service = [cl, rt](SmartCtx &ctx,
                               const workload::YcsbRequest &req,
                               std::uint32_t &retries) -> Task {
            Time start = ctx.sim().now();
            sherman::BtOpResult res;
            if (req.op == workload::YcsbOp::Lookup)
                co_await cl->lookup(ctx, req.key, res);
            else
                co_await cl->insert(ctx, req.key, req.key ^ 0x5eedull, res);
            ctx.runtime().recordOp(ctx.sim().now() - start, res.retries);
            retries = res.retries;
        };
    }
    return rig;
}

/** The three-tenant fleet at an aggregate offered rate (req/us). */
std::vector<TenantConfig>
makeTenants(double total_rate_per_us, Time slo_base_ns)
{
    TenantConfig web;
    web.name = "web";
    web.weight = 2.0;
    web.mix = workload::YcsbMix::readHeavy();
    web.arrival.kind = ArrivalKind::Poisson;
    web.arrival.ratePerUs = 0.5 * total_rate_per_us;
    web.sloP99Ns = 4 * slo_base_ns;
    web.sessions = 8;

    TenantConfig batch;
    batch.name = "batch";
    batch.weight = 1.0;
    batch.mix = workload::YcsbMix::writeHeavy();
    batch.arrival.kind = ArrivalKind::Diurnal;
    batch.arrival.diurnalAmp = 0.6;
    batch.arrival.diurnalPeriodNs = sim::msec(2);
    batch.arrival.ratePerUs = 0.3 * total_rate_per_us;
    batch.sloP99Ns = 8 * slo_base_ns;
    batch.sessions = 4;

    TenantConfig burst;
    burst.name = "burst";
    burst.weight = 1.0;
    burst.mix = workload::YcsbMix::insertHeavy();
    burst.arrival.kind = ArrivalKind::Spike;
    burst.arrival.spikeFactor = 6.0;
    burst.arrival.spikePeriodNs = sim::usec(500);
    burst.arrival.spikeLenNs = sim::usec(50);
    // Duty cycle 0.1 -> mean = 1.5x base; budget the *mean* to the share.
    burst.arrival.ratePerUs = 0.2 * total_rate_per_us / 1.5;
    burst.sloP99Ns = 8 * slo_base_ns;
    burst.sessions = 4;

    return {web, batch, burst};
}

/** Closed-loop capacity worker: always one request in flight. */
Task
closedWorker(SmartCtx &ctx, ServiceFn &svc, workload::YcsbGenerator gen)
{
    for (;;) {
        workload::YcsbRequest req = gen.next();
        std::uint32_t retries = 0;
        co_await svc(ctx, req, retries);
    }
}

/** Closed-loop capacity (ops/us) and service p99 at the same shape. */
void
measureCapacity(const std::string &app, const Shape &sh, BenchCli &cli,
                double &mops, Time &p99_ns)
{
    Rig rig = makeRig(app, sh, cli, nullptr);
    Testbed &tb = *rig.tb;
    SmartRuntime &rt = tb.compute(0);
    const workload::YcsbMix mixes[3] = {workload::YcsbMix::readHeavy(),
                                        workload::YcsbMix::writeHeavy(),
                                        workload::YcsbMix::insertHeavy()};
    double zetan = sim::ZipfianGenerator::zeta(sh.numKeys, 0.99);
    for (std::uint32_t t = 0; t < sh.threads; ++t) {
        for (std::uint32_t k = 0; k < sh.coros; ++k) {
            std::uint64_t seed = 0xca9ac1 + t * 971ull + k * 13ull +
                                 cli.seed() * 0x9e3779b97f4a7c15ull;
            workload::YcsbGenerator gen(sh.numKeys, 0.99,
                                        mixes[(t + k) % 3], seed, zetan);
            rt.spawnWorker(t, [&rig, gen](SmartCtx &ctx) {
                return closedWorker(ctx, rig.service, gen);
            });
        }
    }
    tb.runUntil(sh.warmupNs);
    std::uint64_t ops0 = rt.appOps.value();
    rt.opLatency.reset();
    tb.runUntil(sh.warmupNs + sh.measureNs);
    std::uint64_t ops = rt.appOps.value() - ops0;
    mops = static_cast<double>(ops) /
           (static_cast<double>(sh.measureNs) / 1000.0);
    p99_ns = rt.opLatency.p99();
}

/** One measured sweep point. */
struct PointResult
{
    double offeredX = 0;      ///< nominal fraction of capacity
    double offeredMops = 0;   ///< measured arrivals per us
    double completedMops = 0; ///< measured completions per us
    std::uint64_t p50 = 0, p99 = 0, p999 = 0; ///< end-to-end, merged
    std::uint64_t queueP99 = 0;               ///< admission wait, merged
    std::uint64_t rejected = 0;
    double violMax = 0;        ///< worst tenant violation fraction
    std::uint64_t ladder = 0;  ///< degradation engagements in window
    sim::Json slo;
};

PointResult
runPoint(const std::string &app, const Shape &sh, double frac,
         double capacity_mops, Time slo_base, BenchCli &cli)
{
    char label[32];
    std::snprintf(label, sizeof label, "%s/%.1fx", app.c_str(), frac);
    RunCapture *cap = cli.nextCapture(label);
    Rig rig = makeRig(app, sh, cli, cap);
    Testbed &tb = *rig.tb;
    SmartRuntime &rt = tb.compute(0);

    OpenLoopConfig ocfg;
    ocfg.tenants = makeTenants(frac * capacity_mops, slo_base);
    ocfg.numKeys = sh.numKeys;
    ocfg.queueCap = 512;
    ocfg.seed = cli.seed();
    OpenLoopDriver driver(tb, ocfg, rig.service);
    driver.start(sh.coros);

    tb.runUntil(sh.warmupNs);
    driver.resetWindow();
    rt.opLatency.reset();
    std::uint64_t ladder0 = rt.shedPrefetchCount() + rt.chunkedPostCount() +
                            rt.opDelayCount();
    tb.runUntil(sh.warmupNs + sh.measureNs);

    PointResult r;
    r.offeredX = frac;
    sim::LatencyHistogram e2e, qwait;
    std::uint64_t offered = 0, completed = 0;
    for (std::size_t i = 0; i < driver.numTenants(); ++i) {
        const OpenLoopDriver::TenantStats &s = driver.stats(i);
        offered += s.offered.value();
        completed += s.completed.value();
        r.rejected += s.rejected.value();
        e2e.merge(s.latency);
        qwait.merge(s.queueWait);
        if (s.completed.value() != 0) {
            double vf = static_cast<double>(s.sloViolations.value()) /
                        static_cast<double>(s.completed.value());
            r.violMax = std::max(r.violMax, vf);
        }
    }
    double us = static_cast<double>(sh.measureNs) / 1000.0;
    r.offeredMops = static_cast<double>(offered) / us;
    r.completedMops = static_cast<double>(completed) / us;
    r.p50 = e2e.p50();
    r.p99 = e2e.p99();
    r.p999 = e2e.p999();
    r.queueP99 = qwait.p99();
    r.ladder = rt.shedPrefetchCount() + rt.chunkedPostCount() +
               rt.opDelayCount() - ladder0;
    r.slo = driver.sloJson();
    captureRun(tb, cap);
    return r;
}

// ------------------------------------------------------------ churn arm

/** Raw partitioned service resolving placement through the plane. */
ServiceFn
churnService(MembershipPlane &plane, std::uint64_t *failed_ops)
{
    return [&plane, failed_ops](SmartCtx &ctx,
                                const workload::YcsbRequest &req,
                                std::uint32_t &retries) -> Task {
        SmartRuntime &rt = ctx.runtime();
        const std::uint64_t slots = plane.config().partBytes / 64;
        std::uint32_t part = static_cast<std::uint32_t>(
            req.key % plane.numPartitions());
        std::uint64_t off = (req.key / plane.numPartitions()) % slots * 64;
        bool is_write = req.op != workload::YcsbOp::Lookup;
        std::uint8_t *buf = ctx.scratch(64);
        Time start = ctx.sim().now();
        co_await ctx.opBegin();
        bool done = false;
        for (int attempt = 0; attempt < 256 && !done; ++attempt) {
            while (plane.migrating(part))
                co_await ctx.sim().delay(sim::cyclesToNs(8192));
            std::uint32_t blade = plane.bladeOf(part);
            if (blade == MembershipPlane::kNoBlade) {
                co_await ctx.sim().delay(sim::cyclesToNs(8192));
                continue;
            }
            RemotePtr p = rt.ptr(blade, plane.partitionOffset(part) + off);
            if (is_write)
                co_await ctx.access(p,
                                    AccessOp::write(ConstMemSpan{buf, 64}));
            else
                co_await ctx.access(p, AccessOp::read(MemSpan{buf, 64}));
            if (!ctx.failed()) {
                done = true;
                break;
            }
            ++retries;
            ctx.clearError();
        }
        ctx.opEnd();
        if (done)
            rt.recordOp(ctx.sim().now() - start, 0);
        else
            ++*failed_ops;
    };
}

/** Closed-loop capacity (ops/us) of the raw partitioned service on the
 *  churn shape, with a quiescent membership plane. */
double
measureChurnCapacity(const Shape &sh, BenchCli &cli)
{
    TestbedConfig cfg;
    cfg.computeBlades = 1;
    cfg.memoryBlades = 3;
    cfg.threadsPerBlade = sh.threads;
    cfg.bladeBytes = 8ull << 20;
    cfg.smart = presets::full();
    cfg.smart.withBenchTimescale();
    cfg.smart.withOverloadWatermarks(48, 96);
    cli.configureCache(cfg.smart);
    cfg.smart.corosPerThread = sh.coros + 1;
    Testbed tb(cfg);
    SmartRuntime &rt = tb.compute(0);

    MembershipPlane::Config pc;
    pc.partitions = 24;
    pc.partBytes = 128ull << 10;
    pc.settleNs = sim::usec(100);
    pc.healthCheckNs = sim::usec(200);
    MembershipPlane plane(tb.sim(), pc, "olprobe");
    plane.addRuntime(rt);
    for (std::uint32_t m = 0; m < tb.numMemBlades(); ++m)
        plane.addBlade(tb.memBlade(m));
    plane.seedPartitions();

    std::uint64_t failed_ops = 0;
    ServiceFn svc = churnService(plane, &failed_ops);
    workload::YcsbMix mix{0.75, 0.25, 0.0};
    for (std::uint32_t t = 0; t < sh.threads; ++t) {
        for (std::uint32_t k = 0; k < sh.coros; ++k) {
            std::uint64_t seed = 0xc4a9 + t * 971ull + k * 13ull +
                                 cli.seed() * 0x9e3779b97f4a7c15ull;
            workload::YcsbGenerator gen(sh.numKeys, 0.0, mix, seed);
            rt.spawnWorker(t, [&svc, gen](SmartCtx &ctx) {
                return closedWorker(ctx, svc, gen);
            });
        }
    }
    const Time warm = sim::msec(1);
    const Time measure = sim::msec(2);
    tb.sim().runUntil(warm);
    std::uint64_t ops0 = rt.appOps.value();
    tb.sim().runUntil(warm + measure);
    std::uint64_t ops = rt.appOps.value() - ops0;
    return static_cast<double>(ops) /
           (static_cast<double>(measure) / 1000.0);
}

} // namespace

int
main(int argc, char **argv)
{
    // --churn is this bench's own flag; strip it before BenchCli (which
    // exits on flags it does not know).
    bool churn = false;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::string(argv[i]) == "--churn")
            churn = true;
        else
            args.push_back(argv[i]);
    }
    BenchCli cli(static_cast<int>(args.size()), args.data(), "open_loop");
    bool quick = cli.quick();

    Shape sh;
    sh.threads = quick ? 4 : 8;
    sh.coros = 4;
    sh.numKeys = quick ? 20'000 : 100'000;
    sh.warmupNs = sim::msec(2);
    sh.measureNs = quick ? sim::msec(3) : sim::msec(6);

    std::vector<double> fracs =
        quick ? std::vector<double>{0.2, 0.6, 1.0, 1.2, 1.4}
              : std::vector<double>{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4};

    sim::Json slo = sim::Json::object();
    bool bad = false;

    sim::Table knee_table(
        {"app", "capacity_mops", "closed_p99_ns", "knee_x", "overload_x"});

    for (const std::string &app : {std::string("ht"), std::string("bt")}) {
        double capacity = 0;
        Time closed_p99 = 0;
        measureCapacity(app, sh, cli, capacity, closed_p99);
        std::cout << "== open_loop " << app << ": closed-loop capacity "
                  << capacity << " mops, service p99 " << closed_p99
                  << " ns ==\n";

        std::vector<PointResult> pts;
        for (double f : fracs)
            pts.push_back(runPoint(app, sh, f, capacity, closed_p99, cli));

        sim::Table t({"offered_x", "offered_mops", "completed_mops",
                      "p50_ns", "p99_ns", "p999_ns", "queue_wait_p99_ns",
                      "rejected", "slo_viol_max", "ladder"});
        for (const PointResult &p : pts) {
            t.row()
                .cell(p.offeredX, 1)
                .cell(p.offeredMops, 3)
                .cell(p.completedMops, 3)
                .cell(p.p50)
                .cell(p.p99)
                .cell(p.p999)
                .cell(p.queueP99)
                .cell(p.rejected)
                .cell(p.violMax, 4)
                .cell(p.ladder);
        }
        cli.addTable("open_loop_" + app, t);

        // Knee: first point whose p99 exceeds 3x the low-load p99.
        // Overload: first point that sheds or engages the ladder.
        double knee_x = fracs.back();
        for (const PointResult &p : pts) {
            if (p.p99 > 3 * pts.front().p99) {
                knee_x = p.offeredX;
                break;
            }
        }
        double overload_x = 0;
        for (const PointResult &p : pts) {
            if (p.rejected > 0 || p.ladder > 0) {
                overload_x = p.offeredX;
                break;
            }
        }
        knee_table.row()
            .cell(app)
            .cell(capacity, 3)
            .cell(static_cast<std::uint64_t>(closed_p99))
            .cell(knee_x, 1)
            .cell(overload_x, 1);

        // Gate: p99 monotonically non-decreasing (5% tolerance) up to
        // the knee.
        for (std::size_t i = 1; i < pts.size(); ++i) {
            if (pts[i].offeredX > knee_x)
                break;
            if (static_cast<double>(pts[i].p99) <
                0.95 * static_cast<double>(pts[i - 1].p99)) {
                std::cerr << "open_loop: " << app << " p99 dips at "
                          << pts[i].offeredX << "x (" << pts[i].p99
                          << " < " << pts[i - 1].p99 << ")\n";
                bad = true;
            }
        }
        // Gate: the 1.4x point visibly overloads.
        const PointResult &top = pts.back();
        if (top.rejected == 0 && top.ladder == 0) {
            std::cerr << "open_loop: " << app
                      << " 1.4x point neither sheds nor engages the "
                         "degradation ladder\n";
            bad = true;
        }

        for (std::size_t i = 0; i < fracs.size(); ++i) {
            char key[32];
            std::snprintf(key, sizeof key, "%s/%.1fx", app.c_str(),
                          fracs[i]);
            slo.set(key, pts[i].slo);
        }
    }
    cli.addTable("open_loop_knee", knee_table);

    // ---------------------------------------------------------- churn
    if (churn) {
        const std::uint32_t partitions = 24;
        TestbedConfig cfg;
        cfg.computeBlades = 1;
        cfg.memoryBlades = 3;
        cfg.threadsPerBlade = sh.threads;
        cfg.bladeBytes = 8ull << 20;
        cfg.smart = presets::full();
        cfg.smart.withBenchTimescale();
        cfg.smart.withOverloadWatermarks(48, 96);
        cli.configureCache(cfg.smart);
        // +1 slot on thread 0 for the plane's migration worker.
        cfg.smart.corosPerThread = sh.coros + 1;
        // Membership + fault planes keep the churn arm single-shard
        // (both abort on a sharded simulation), so --shards is not
        // applied here.
        RunCapture *cap = cli.nextCapture("churn/0.9x");
        if (cap != nullptr) {
            cfg.traceSampleNs = sim::usec(500);
            cli.configureSpans(cfg);
            cli.configureTimeline(cfg);
        }
        Testbed tb(cfg);
        SmartRuntime &rt = tb.compute(0);

        MembershipPlane::Config pc;
        pc.partitions = partitions;
        pc.partBytes = 128ull << 10;
        pc.settleNs = sim::usec(100);
        pc.healthCheckNs = sim::usec(200);
        MembershipPlane plane(tb.sim(), pc, "olchurn");
        plane.addRuntime(rt);
        for (std::uint32_t m = 0; m < tb.numMemBlades(); ++m)
            plane.addBlade(tb.memBlade(m));
        plane.seedPartitions();
        plane.startHealthMonitor();

        std::uint64_t failed_ops = 0;
        ServiceFn svc = churnService(plane, &failed_ops);

        double est_capacity = measureChurnCapacity(sh, cli);
        std::cout << "== open_loop churn: raw closed-loop capacity "
                  << est_capacity << " mops ==\n";

        OpenLoopConfig ocfg;
        workload::YcsbMix churn_mix{0.75, 0.25, 0.0};
        TenantConfig raw;
        raw.name = "raw";
        raw.weight = 1.0;
        raw.mix = churn_mix;
        raw.zipfTheta = 0.0; // uniform over the partition space
        raw.arrival.kind = ArrivalKind::Poisson;
        raw.arrival.ratePerUs = 0.9 * est_capacity;
        raw.sloP99Ns = 0;
        raw.sessions = 8;
        ocfg.tenants = {raw};
        ocfg.numKeys = sh.numKeys;
        ocfg.queueCap = 2048;
        ocfg.seed = cli.seed();
        OpenLoopDriver driver(tb, ocfg, svc);
        driver.start(sh.coros);

        const Time warm = sim::msec(2);
        const Time drain_at = warm + sim::msec(2);
        const Time rejoin_at = warm + sim::msec(5);
        const Time end = warm + sim::msec(8);
        // Drive the drain/rejoin cycle through the fault plane's churn
        // target: same virtual times as scheduling plane.drain/rejoin
        // directly, but the event is now a first-class injected fault
        // (counted, recorded, and annotated on the time series).
        plane.enableChurnTargets();
        tb.faultPlane().oneShot(drain_at, sim::FaultKind::Crash,
                                "drain.mb2", rejoin_at - drain_at);

        tb.runUntil(warm);
        driver.resetWindow();

        struct Phase
        {
            const char *name;
            Time a, b;
        };
        std::vector<Phase> phases = {{"pre", warm, drain_at},
                                     {"drain", drain_at, rejoin_at},
                                     {"rejoin", rejoin_at, end}};
        sim::Table ct({"phase", "completed_kops", "p99_ns", "rejected"});
        for (const Phase &ph : phases) {
            driver.resetWindow();
            tb.runUntil(ph.b);
            const OpenLoopDriver::TenantStats &s = driver.stats(0);
            double kops = static_cast<double>(s.completed.value()) /
                          (static_cast<double>(ph.b - ph.a) / 1e6);
            ct.row()
                .cell(std::string(ph.name))
                .cell(kops, 1)
                .cell(s.latency.p99())
                .cell(s.rejected.value());
        }
        cli.addTable("open_loop_churn", ct);
        captureRun(tb, cap);

        if (failed_ops != 0) {
            std::cerr << "open_loop: churn surfaced " << failed_ops
                      << " failed ops (want 0)\n";
            bad = true;
        }
    }

    cli.setSlo(slo);
    cli.note("Expected shape: flat p50/p99 below the knee, sharp p99 "
             "rise past it, shedding + degradation ladder at 1.2-1.4x; "
             "weighted-fair admission keeps web p99 bounded while burst "
             "spikes absorb their own queue.");

    if (bad)
        return 1;
    return cli.finish();
}
