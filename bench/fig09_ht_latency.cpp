/**
 * @file
 * Reproduces paper Figure 9: throughput vs median/p99 latency for the
 * read-only hash-table workload at 96 threads, sweeping injected think
 * time to trace the curve (the paper throttles execution the same way).
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "harness/ht_bench.hpp"
#include "sim/table.hpp"

using namespace smart;
using namespace smart::harness;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv, "fig09_ht_latency");
    std::uint64_t keys = cli.quick() ? 200'000 : 1'000'000;

    std::vector<sim::Time> delays =
        cli.quick()
            ? std::vector<sim::Time>{0, sim::usec(100)}
            : std::vector<sim::Time>{0, sim::usec(20), sim::usec(50),
                                     sim::usec(100), sim::usec(200),
                                     sim::usec(500), sim::usec(1000)};

    for (bool smart_on : {false, true}) {
        const char *label = smart_on ? "SMART-HT" : "RACE";
        std::cout << "== Figure 9 (" << label
                  << "): read-only, 96 threads ==\n";
        sim::Table t({"think_us", "MOPS", "p50_us", "p99_us"});
        for (sim::Time d : delays) {
            TestbedConfig cfg;
            cfg.computeBlades = 1;
            cfg.memoryBlades = 2;
            cfg.threadsPerBlade = 96;
            cfg.bladeBytes = 3ull << 30;
            cfg.smart = smart_on ? presets::full() : presets::baseline();
            cfg.smart.withBenchTimescale();
            cli.configureCache(cfg.smart);
            cli.configureSpans(cfg);
            cli.configureShards(cfg);

            HtBenchParams p;
            p.numKeys = keys;
            p.mix = workload::YcsbMix::readOnly();
            p.seed = cli.seed();
            p.interOpDelayNs = d;
            p.warmupNs = sim::msec(8);
            p.measureNs = cli.quick() ? sim::msec(2) : sim::msec(4);
            RunCapture *cap =
                d == 0 ? cli.nextCapture(std::string(label) + "/think0")
                       : nullptr;
            HtBenchResult r = runHtBench(cfg, p, cap);
            t.row()
                .cell(static_cast<std::uint64_t>(d / 1000))
                .cell(r.mops, 2)
                .cell(r.medianNs / 1000.0, 1)
                .cell(r.p99Ns / 1000.0, 1);
        }
        cli.addTable(smart_on ? "fig09_smart" : "fig09_race", t);
        std::cout << "\n";
    }
    cli.note("Paper shape: SMART-HT reduces median latency by ~70% and "
             "p99 by up to ~80% at matched throughput, and sustains "
             "~2x the maximum throughput.");
    return cli.finish();
}
