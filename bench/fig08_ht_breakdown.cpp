/**
 * @file
 * Reproduces paper Figure 8: breakdown of SMART-HT's gains by enabling
 * the three techniques one at a time — +ThdResAlloc (thread-aware
 * resource allocation), +WorkReqThrot (adaptive work-request
 * throttling), +ConflictAvoid (backoff + dynamic limits + coroutine
 * throttling).
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "harness/ht_bench.hpp"
#include "sim/table.hpp"

using namespace smart;
using namespace smart::harness;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv, "fig08_ht_breakdown");
    bool quick = cli.quick();
    std::uint64_t keys = quick ? 200'000 : 1'000'000;

    struct Step
    {
        const char *name;
        SmartConfig cfg;
    };
    const std::vector<Step> steps = {
        {"RACE", presets::baseline()},
        {"+ThdResAlloc", presets::thdResAlloc()},
        {"+WorkReqThrot", presets::workReqThrot()},
        {"+ConflictAvoid", presets::full()},
    };

    const std::vector<workload::YcsbMix> mixes = {
        workload::YcsbMix::writeHeavy(), workload::YcsbMix::readHeavy(),
        workload::YcsbMix::readOnly()};
    std::vector<std::uint32_t> threads =
        quick ? std::vector<std::uint32_t>{96}
              : std::vector<std::uint32_t>{16, 48, 96};

    for (const auto &mix : mixes) {
        std::cout << "== Figure 8 (" << mix.name()
                  << "): MOP/s per technique ==\n";
        sim::Table t({"threads", "RACE", "+ThdResAlloc", "+WorkReqThrot",
                      "+ConflictAvoid"});
        for (std::uint32_t thr : threads) {
            t.row().cell(static_cast<std::uint64_t>(thr));
            for (const Step &s : steps) {
                TestbedConfig cfg;
                cfg.computeBlades = 1;
                cfg.memoryBlades = 2;
                cfg.threadsPerBlade = thr;
                cfg.bladeBytes = 3ull << 30;
                cfg.smart = s.cfg;
                cfg.smart.withBenchTimescale();
                cli.configureCache(cfg.smart);
                cli.configureSpans(cfg);
                cli.configureShards(cfg);

                HtBenchParams p;
                p.numKeys = keys;
                p.mix = mix;
                p.seed = cli.seed();
                p.warmupNs = sim::msec(8);
                p.measureNs = quick ? sim::msec(2) : sim::msec(4);
                RunCapture *cap =
                    thr == threads.back()
                        ? cli.nextCapture(std::string(s.name) + "/" +
                                          mix.name())
                        : nullptr;
                HtBenchResult r = runHtBench(cfg, p, cap);
                t.cell(r.mops, 2);
            }
        }
        cli.addTable(std::string("fig08_") + mix.name(), t);
        std::cout << "\n";
    }
    cli.note("Paper shape: ThdResAlloc dominates read-heavy gains; "
             "WorkReqThrot helps write-heavy at 8-32 threads; "
             "ConflictAvoid dominates write-heavy at high threads.");
    return cli.finish();
}
