/**
 * @file
 * Reproduces paper Table 1: 8-byte READ throughput under a dynamically
 * changing workload — the number of active threads jumps randomly in
 * [36, 96] at a fixed interval, with and without adaptive work-request
 * throttling. Batch size 64, per-thread doorbells.
 *
 * Timescale note: the paper changes the workload every 32-2048 ms
 * against a 480 ms epoch; the benches scale the epoch by 8x (probe 1 ms,
 * stable 20 ms => ~25 ms epoch), so the interval sweep is scaled the
 * same way (4-256 ms). The comparison "interval shorter vs longer than
 * the epoch" is preserved.
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "harness/testbed.hpp"
#include "sim/random.hpp"
#include "sim/table.hpp"
#include "smart/smart_ctx.hpp"

using namespace smart;
using namespace smart::harness;
using sim::Task;
using sim::Time;

namespace {

std::uint32_t g_span_every = 0; // from BenchCli --trace-spans

struct Shared
{
    std::uint32_t activeThreads = 96;
};

Task
dynWorker(SmartCtx &ctx, const Shared &shared, std::uint32_t batch,
          std::uint64_t seed)
{
    SmartRuntime &rt = ctx.runtime();
    sim::Rng rng(0xd15c0 + ctx.thread().id() +
                 seed * 0x9e3779b97f4a7c15ull);
    std::uint8_t *buf = ctx.scratch(batch * 8);
    const std::uint64_t slots = (1ull << 28) / 64;
    for (;;) {
        if (ctx.thread().id() >= shared.activeThreads) {
            co_await ctx.sim().delay(sim::usec(50));
            continue;
        }
        for (std::uint32_t i = 0; i < batch; ++i)
            ctx.read(rt.ptr(0, rng.uniform(slots) * 64), MemSpan{buf + i * 8, 8});
        co_await ctx.postSend();
        co_await ctx.sync();
    }
}

Task
controller(sim::Simulator &sim, Shared &shared, Time interval,
           std::uint64_t seed)
{
    sim::Rng rng(42 ^ seed);
    for (;;) {
        co_await sim.delay(interval);
        shared.activeThreads =
            static_cast<std::uint32_t>(rng.uniformRange(36, 96));
    }
}

double
run(bool throttle, Time interval, Time window, std::uint64_t seed,
    RunCapture *cap = nullptr)
{
    TestbedConfig cfg;
    cfg.computeBlades = 1;
    cfg.memoryBlades = 1;
    cfg.bladeBytes = 1ull << 28;
    cfg.threadsPerBlade = 96;
    cfg.smart = throttle ? presets::workReqThrot() : presets::thdResAlloc();
    cfg.smart.corosPerThread = 1;
    cfg.smart.withBenchTimescale();
    if (cap != nullptr) {
        cfg.traceSampleNs = sim::usec(500);
        cfg.spanSampleEvery = g_span_every;
    }

    Testbed tb(cfg);
    Shared shared;
    for (std::uint32_t t = 0; t < 96; ++t) {
        tb.compute(0).spawnWorker(t, [&shared, seed](SmartCtx &ctx) {
            return dynWorker(ctx, shared, 64, seed);
        });
    }
    tb.compute(0).sim().spawn(
        controller(tb.compute(0).sim(), shared, interval, seed));

    Time warmup = sim::msec(8);
    tb.sim().runUntil(warmup);
    std::uint64_t wrs0 = tb.compute(0).rnic().perf().wrsCompleted.value();
    tb.sim().runUntil(warmup + window);
    std::uint64_t wrs =
        tb.compute(0).rnic().perf().wrsCompleted.value() - wrs0;
    captureRun(tb, cap);
    return static_cast<double>(wrs) /
           (static_cast<double>(window) / 1000.0);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv, "table1_dynamic");
    g_span_every = cli.spanSampleEvery();
    bool quick = cli.quick();

    std::vector<Time> intervals =
        quick ? std::vector<Time>{sim::msec(4), sim::msec(64)}
              : std::vector<Time>{sim::msec(4),  sim::msec(8),
                                  sim::msec(16), sim::msec(32),
                                  sim::msec(64), sim::msec(128),
                                  sim::msec(256)};

    std::cout << "== Table 1: 8-byte READ MOP/s under dynamically "
                 "changing thread counts (36-96), batch = 64 ==\n";
    sim::Table t({"interval_ms", "w/o WorkReqThrot", "w/ WorkReqThrot"});
    for (Time iv : intervals) {
        Time window = quick ? sim::msec(12)
                            : std::max<Time>(sim::msec(24), 3 * iv);
        // Capture the throttled run at the shortest interval — its
        // trace shows the credit controller re-probing after every
        // workload change.
        bool first = iv == intervals.front();
        double off = run(false, iv, window, cli.seed());
        double on =
            run(true, iv, window, cli.seed(),
                first ? cli.nextCapture(
                            "throttle/iv" +
                            std::to_string(iv / 1000000) + "ms")
                      : nullptr);
        t.row()
            .cell(static_cast<std::uint64_t>(iv / 1000000))
            .cell(off, 1)
            .cell(on, 1);
    }
    cli.addTable("table1", t);
    cli.note("\nPaper shape: with throttling, throughput is near the "
             "110 MOP/s limit once the change interval exceeds the "
             "epoch, and degrades by at most ~13% below it; without "
             "throttling it sits far lower at every interval.");
    return cli.finish();
}
