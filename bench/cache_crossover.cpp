/**
 * @file
 * Cache-tier crossover: hit ratio vs IOPS as workload skew varies.
 *
 * Sweeps Zipfian theta over the RACE hash table with the compute-side
 * cache tier off and on. High skew concentrates the working set into the
 * frame pool (hits replace ~1.3 us wire round-trips with ~60 ns local
 * copies); uniform access thrashes it, so the cached run must track the
 * cache-less one within noise. A second table moves the hot set mid-run
 * (YcsbGenerator::rotate) and shows the pool re-converging.
 *
 * Expected shape (gated by scripts/check_bench_json.py):
 *   theta >= 0.9 : cached >= 2x ops/s of no-cache at >= 80% hit ratio
 *   theta == 0   : cached never regresses below 0.95x no-cache (it may
 *                  still win outright when the bucket array partially
 *                  fits), and the pool must actually thrash (evictions)
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "harness/ht_bench.hpp"
#include "sim/table.hpp"

using namespace smart;
using namespace smart::harness;

namespace {

std::uint64_t g_seed = 0;
const BenchCli *g_cli = nullptr;

HtBenchResult
run(double theta, bool cached, std::uint64_t keys, bool quick,
    const HtBenchParams *shift = nullptr, RunCapture *cap = nullptr)
{
    TestbedConfig cfg;
    cfg.computeBlades = 1;
    cfg.memoryBlades = 2;
    cfg.threadsPerBlade = quick ? 8 : 16;
    cfg.bladeBytes = 3ull << 30;
    cfg.smart = presets::full();
    cfg.smart.withBenchTimescale();
    if (cached) {
        // Default pool sized to hold the theta >= 0.9 hot set but stay
        // far below the uniform working set (so theta=0 thrashes and the
        // crossover is visible). --cache-mb overrides.
        cfg.smart.withCacheMb(quick ? 8 : 32);
        g_cli->configureCache(cfg.smart);
    }
    g_cli->configureShards(cfg);
    if (cap != nullptr)
        g_cli->configureTimeline(cfg);

    HtBenchParams p;
    p.numKeys = keys;
    p.zipfTheta = theta;
    p.mix = workload::YcsbMix::readHeavy();
    p.seed = g_seed;
    p.warmupNs = sim::msec(8);
    p.measureNs = quick ? sim::msec(2) : sim::msec(4);
    if (shift != nullptr) {
        p.shiftAtNs = shift->shiftAtNs;
        p.shiftRotate = shift->shiftRotate;
    }
    return runHtBench(cfg, p, cap);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv, "cache_crossover");
    g_seed = cli.seed();
    g_cli = &cli;
    bool quick = cli.quick();
    std::uint64_t keys = quick ? 200'000 : 1'000'000;

    std::vector<double> thetas = quick
                                     ? std::vector<double>{0.0, 0.9, 0.99}
                                     : std::vector<double>{0.0, 0.5, 0.9,
                                                           0.99};

    std::cout << "== Cache crossover: read-heavy RACE, hit ratio vs "
                 "IOPS across skew ==\n";
    sim::Table t({"theta", "nocache_mops", "cached_mops", "speedup",
                  "hit_ratio", "evictions"});
    for (double theta : thetas) {
        bool last = theta == thetas.back();
        HtBenchResult off =
            run(theta, false, keys, quick, nullptr,
                last ? cli.nextCapture("nocache") : nullptr);
        HtBenchResult on =
            run(theta, true, keys, quick, nullptr,
                last ? cli.nextCapture("cached") : nullptr);
        t.row()
            .cell(theta, 2)
            .cell(off.mops, 2)
            .cell(on.mops, 2)
            .cell(off.mops > 0 ? on.mops / off.mops : 0.0, 2)
            .cell(on.hitRatio, 3)
            .cell(on.cacheEvictions);
    }
    cli.addTable("cache_crossover", t);
    std::cout << "\n";

    // ---- skew shift: rotate the theta=0.99 hot set mid-measure ----
    std::cout << "== Cache under skew shift (theta = 0.99, cached) ==\n";
    sim::Table s({"run", "mops", "hit_ratio", "evictions"});
    HtBenchResult steady = run(0.99, true, keys, quick);
    HtBenchParams shift;
    shift.shiftAtNs = sim::msec(8) + (quick ? sim::msec(1) : sim::msec(2));
    shift.shiftRotate = keys / 2;
    HtBenchResult shifted = run(0.99, true, keys, quick, &shift,
                                cli.nextCapture("shifted"));
    s.row()
        .cell("steady")
        .cell(steady.mops, 2)
        .cell(steady.hitRatio, 3)
        .cell(steady.cacheEvictions);
    s.row()
        .cell("shifted")
        .cell(shifted.mops, 2)
        .cell(shifted.hitRatio, 3)
        .cell(shifted.cacheEvictions);
    cli.addTable("cache_skew_shift", s);

    cli.note("Expected shape: theta>=0.9 cached >=2x no-cache ops/s at "
             ">=80% hit ratio; theta=0 never below 0.95x; the shifted "
             "run dips then re-converges as the pool turns over.");
    return cli.finish();
}
