/**
 * @file
 * Reproduces paper Figure 13: (a) 8-byte READ throughput for per-thread
 * QP / per-thread context / +ThdResAlloc / +WorkReqThrot as threads grow
 * (batch 16), and (b) the same policies as the work-request batch size
 * grows at 96 threads.
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "harness/rdma_bench.hpp"
#include "sim/table.hpp"

using namespace smart;
using namespace smart::harness;

namespace {

std::uint64_t g_seed = 0;   // from BenchCli --seed
std::uint32_t g_shards = 1; // from BenchCli --shards

struct Policy
{
    const char *name;
    SmartConfig cfg;
};

std::vector<Policy>
policies()
{
    SmartConfig per_thread_qp = presets::baseline();
    SmartConfig per_thread_ctx =
        presets::baseline().withQpPolicy(QpPolicy::PerThreadContext);
    SmartConfig thd_res = presets::thdResAlloc();
    SmartConfig throt = presets::workReqThrot().withBenchTimescale();
    return {
        {"per-thread-qp", per_thread_qp},
        {"per-thread-ctx", per_thread_ctx},
        {"+ThdResAlloc", thd_res},
        {"+WorkReqThrot", throt},
    };
}

double
run(const SmartConfig &smart, std::uint32_t threads, std::uint32_t batch,
    bool quick, RunCapture *cap = nullptr)
{
    TestbedConfig cfg;
    cfg.computeBlades = 1;
    cfg.memoryBlades = 1;
    cfg.threadsPerBlade = threads;
    cfg.smart = smart;
    cfg.smart.corosPerThread = 1;
    cfg.shards = g_shards;

    RdmaBenchParams params;
    params.depth = batch;
    params.seed = g_seed;
    params.warmupNs = smart.workReqThrottle ? sim::msec(8) : sim::msec(1);
    params.measureNs = quick ? sim::msec(2) : sim::msec(4);
    return runRdmaBench(cfg, params, cap).mops;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv, "fig13_micro");
    g_seed = cli.seed();
    g_shards = cli.shards();
    bool quick = cli.quick();
    std::vector<Policy> pols = policies();

    std::cout << "== Figure 13a: 8-byte READ MOP/s vs threads "
                 "(batch = 16) ==\n";
    sim::Table a({"threads", "per-thread-qp", "per-thread-ctx",
                  "+ThdResAlloc", "+WorkReqThrot"});
    std::vector<std::uint32_t> threads =
        quick ? std::vector<std::uint32_t>{24, 96}
              : std::vector<std::uint32_t>{8, 16, 24, 32, 48, 56, 64, 80,
                                           96};
    for (std::uint32_t t : threads) {
        a.row().cell(static_cast<std::uint64_t>(t));
        for (const Policy &p : pols) {
            RunCapture *cap =
                t == threads.back()
                    ? cli.nextCapture(std::string(p.name) + "/t" +
                                      std::to_string(t))
                    : nullptr;
            a.cell(run(p.cfg, t, 16, quick, cap), 1);
        }
    }
    cli.addTable("fig13a", a);

    std::cout << "\n== Figure 13b: 8-byte READ MOP/s vs batch size "
                 "(96 threads) ==\n";
    sim::Table b({"batch", "per-thread-qp", "per-thread-ctx",
                  "+ThdResAlloc", "+WorkReqThrot"});
    std::vector<std::uint32_t> batches =
        quick ? std::vector<std::uint32_t>{8, 64}
              : std::vector<std::uint32_t>{1, 2, 4, 8, 16, 32, 64};
    for (std::uint32_t bs : batches) {
        b.row().cell(static_cast<std::uint64_t>(bs));
        for (const Policy &p : pols)
            b.cell(run(p.cfg, 96, bs, quick), 1);
    }
    cli.addTable("fig13b", b);

    cli.note("\nPaper shape: +ThdResAlloc reaches the 110 MOP/s "
             "hardware limit (up to 4.3x over per-thread QP, ~1.9x "
             "over per-thread context); +WorkReqThrot stays at the "
             "limit for 56+ threads and for batch sizes > 8.");
    return cli.finish();
}
