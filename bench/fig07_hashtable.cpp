/**
 * @file
 * Reproduces paper Figure 7: RACE vs SMART-HT throughput across the
 * three YCSB mixes — (a)-(c) scale-up on one compute blade, (d)-(f)
 * scale-out across up to six compute blades at full thread count.
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "harness/ht_bench.hpp"
#include "sim/table.hpp"

using namespace smart;
using namespace smart::harness;

namespace {

std::uint64_t g_seed = 0;           // from BenchCli --seed
std::uint32_t g_span_every = 0;     // from BenchCli --trace-spans
const BenchCli *g_cli = nullptr;    // for --cache-* flags

HtBenchResult
run(std::uint32_t compute_blades, std::uint32_t threads, bool smart_on,
    const workload::YcsbMix &mix, std::uint64_t keys, bool quick,
    RunCapture *cap = nullptr)
{
    TestbedConfig cfg;
    cfg.computeBlades = compute_blades;
    cfg.memoryBlades = 2;
    cfg.threadsPerBlade = threads;
    cfg.bladeBytes = 3ull << 30;
    cfg.smart = smart_on ? presets::full() : presets::baseline();
    cfg.smart.withBenchTimescale();
    g_cli->configureCache(cfg.smart);
    g_cli->configureShards(cfg);
    cfg.spanSampleEvery = g_span_every;

    HtBenchParams p;
    p.numKeys = keys;
    p.mix = mix;
    p.seed = g_seed;
    p.warmupNs = sim::msec(8); // covers one full C_max update phase
    p.measureNs = quick ? sim::msec(2) : sim::msec(4);
    return runHtBench(cfg, p, cap);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv, "fig07_hashtable");
    g_seed = cli.seed();
    g_span_every = cli.spanSampleEvery();
    g_cli = &cli;
    bool quick = cli.quick();
    std::uint64_t keys = quick ? 200'000 : 1'000'000;

    const std::vector<workload::YcsbMix> mixes = {
        workload::YcsbMix::writeHeavy(), workload::YcsbMix::readHeavy(),
        workload::YcsbMix::readOnly()};

    // ---- (a)-(c): scale-up, one compute blade ----
    std::vector<std::uint32_t> threads =
        quick ? std::vector<std::uint32_t>{8, 48, 96}
              : std::vector<std::uint32_t>{8, 16, 32, 48, 64, 96};
    for (const auto &mix : mixes) {
        std::cout << "== Figure 7 scale-up (" << mix.name()
                  << "): MOP/s, 1 compute blade ==\n";
        sim::Table t({"threads", "RACE", "SMART-HT"});
        for (std::uint32_t thr : threads) {
            bool last = thr == threads.back();
            HtBenchResult base = run(
                1, thr, false, mix, keys, quick,
                last ? cli.nextCapture(std::string("RACE/") + mix.name())
                     : nullptr);
            HtBenchResult sm =
                run(1, thr, true, mix, keys, quick,
                    last ? cli.nextCapture(std::string("SMART-HT/") +
                                           mix.name())
                         : nullptr);
            t.row()
                .cell(static_cast<std::uint64_t>(thr))
                .cell(base.mops, 2)
                .cell(sm.mops, 2);
        }
        cli.addTable(std::string("fig07_scaleup_") + mix.name(), t);
        std::cout << "\n";
    }

    // ---- (d)-(f): scale-out, 96 threads per compute blade ----
    std::vector<std::uint32_t> blades =
        quick ? std::vector<std::uint32_t>{1, 2}
              : std::vector<std::uint32_t>{1, 2, 4, 6};
    for (const auto &mix : mixes) {
        std::cout << "== Figure 7 scale-out (" << mix.name()
                  << "): MOP/s, 96 threads per compute blade ==\n";
        sim::Table t({"compute_blades", "RACE", "SMART-HT"});
        for (std::uint32_t cb : blades) {
            HtBenchResult base = run(cb, 96, false, mix, keys, quick);
            HtBenchResult sm = run(cb, 96, true, mix, keys, quick);
            t.row()
                .cell(static_cast<std::uint64_t>(cb))
                .cell(base.mops, 2)
                .cell(sm.mops, 2);
        }
        cli.addTable(std::string("fig07_scaleout_") + mix.name(), t);
        std::cout << "\n";
    }

    cli.note("Paper shape: write-heavy RACE peaks ~2.8 MOP/s at 8 "
             "threads vs SMART-HT ~5.7 at 48; read-only RACE <11.4 vs "
             "SMART-HT ~23.7; scale-out gaps up to 132x (write-heavy) "
             "and 2-3.8x (read-only).");
    return cli.finish();
}
