/**
 * @file
 * Reproduces paper Figure 11: throughput vs median commit latency for
 * SmallBank and TATP at 96 threads x 8 coroutines (768 concurrent
 * tasks), tracing the curve by throttling transaction issue.
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "harness/dtx_bench.hpp"
#include "sim/table.hpp"

using namespace smart;
using namespace smart::harness;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv, "fig11_dtx_latency");

    std::vector<sim::Time> delays =
        cli.quick()
            ? std::vector<sim::Time>{0, sim::usec(300)}
            : std::vector<sim::Time>{0, sim::usec(50), sim::usec(100),
                                     sim::usec(300), sim::usec(1000),
                                     sim::usec(3000)};

    for (DtxWorkload w : {DtxWorkload::SmallBank, DtxWorkload::Tatp}) {
        for (bool smart_on : {false, true}) {
            const char *label = smart_on ? "SMART-DTX" : "FORD+";
            std::cout << "== Figure 11 (" << dtxWorkloadName(w) << ", "
                      << label << "): 96 threads x 8 coroutines ==\n";
            sim::Table t({"think_us", "Mtxn/s", "p50_us", "p99_us"});
            for (sim::Time d : delays) {
                DtxBenchParams p;
                p.workload = w;
                p.threads = 96;
                p.seed = cli.seed();
                p.spanSampleEvery = cli.spanSampleEvery();
                p.shards = cli.shards();
                p.numAccounts = cli.quick() ? 20'000 : 100'000;
                p.measureNs = cli.quick() ? sim::msec(2) : sim::msec(4);
                p.smartOn = smart_on;
                p.interTxnDelayNs = d;
                RunCapture *cap =
                    d == 0 ? cli.nextCapture(std::string(label) + "/" +
                                             dtxWorkloadName(w) +
                                             "/think0")
                           : nullptr;
                DtxBenchResult r = runDtxBench(p, cap);
                t.row()
                    .cell(static_cast<std::uint64_t>(d / 1000))
                    .cell(r.mtps, 2)
                    .cell(r.medianNs / 1000.0, 1)
                    .cell(r.p99Ns / 1000.0, 1);
            }
            cli.addTable(std::string("fig11_") + dtxWorkloadName(w) +
                             (smart_on ? "_smart" : "_ford"),
                         t);
            std::cout << "\n";
        }
    }
    cli.note("Paper shape: SMART-DTX cuts median latency by up to "
             "~46% (SmallBank) / ~77% (TATP) at matched throughput "
             "(median ~29% of FORD's in SmallBank), and extends the "
             "maximum throughput several-fold.");
    return cli.finish();
}
