/**
 * @file
 * Elasticity: throughput knee curve across live membership events. A
 * partitioned working set spreads over three memory blades; mid-run the
 * cluster (1) drains mb2 (graceful removal with live migration), (2)
 * joins a cold replacement blade mb3 (background rebalance), and (3)
 * loses mb1 to a crash (fenced failover + zero-fill recovery). Workers
 * resolve partition placement through the MembershipPlane on every
 * attempt; a fenced access surfaces VerbError::StaleView and is retried
 * against the re-placed partition, so no operation is ever surfaced to
 * the application as failed.
 *
 * Gates (exit 1 on violation):
 *  - failed_ops == 0 (every op fenced/redirected, none lost)
 *  - post-crash throughput >= 0.9x pre-event steady state
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "harness/testbed.hpp"
#include "sim/fault.hpp"
#include "sim/random.hpp"
#include "sim/table.hpp"
#include "smart/cache/buffer_manager.hpp"
#include "smart/membership.hpp"
#include "smart/smart_ctx.hpp"

using namespace smart;
using namespace smart::harness;
using sim::Task;
using sim::Time;

namespace {

struct Shared
{
    std::uint64_t failedOps = 0;      ///< ops that exhausted the retry budget
    std::uint64_t fencedRetries = 0;  ///< StaleView -> re-resolve + retry
    std::uint64_t otherRetries = 0;   ///< timeouts/remote errors retried
    std::uint64_t migrationWaits = 0; ///< waits on a migrating partition
};

Task
elasticWorker(SmartCtx &ctx, MembershipPlane &plane, std::uint64_t seed,
              Shared &sh)
{
    SmartRuntime &rt = ctx.runtime();
    sim::Rng rng(seed);
    const std::uint64_t slots = plane.config().partBytes / 64;
    std::uint8_t *buf = ctx.scratch(64);
    for (;;) {
        std::uint32_t part =
            static_cast<std::uint32_t>(rng.uniform(plane.numPartitions()));
        std::uint64_t off = rng.uniform(slots) * 64;
        bool is_write = (rng.next32() & 3) == 0; // 25% writes
        Time start = ctx.sim().now();
        co_await ctx.opBegin();
        bool done = false;
        for (int attempt = 0; attempt < 256 && !done; ++attempt) {
            // Back off while the partition's bytes are in flight.
            while (plane.migrating(part)) {
                ++sh.migrationWaits;
                co_await ctx.sim().delay(
                    sim::cyclesToNs(8192 + rng.uniform(8192)));
            }
            std::uint32_t blade = plane.bladeOf(part);
            if (blade == MembershipPlane::kNoBlade) {
                co_await ctx.sim().delay(
                    sim::cyclesToNs(8192 + rng.uniform(8192)));
                continue;
            }
            RemotePtr p = rt.ptr(blade, plane.partitionOffset(part) + off);
            if (is_write)
                co_await ctx.access(p, AccessOp::write(ConstMemSpan{buf, 64}));
            else
                co_await ctx.access(p, AccessOp::read(MemSpan{buf, 64}));
            if (!ctx.failed()) {
                done = true;
                break;
            }
            if (ctx.lastError().kind == VerbError::Kind::StaleView)
                ++sh.fencedRetries;
            else
                ++sh.otherRetries;
            ctx.clearError();
        }
        ctx.opEnd();
        if (done)
            rt.recordOp(ctx.sim().now() - start, 0);
        else
            ++sh.failedOps;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv, "elasticity");
    bool quick = cli.quick();

    const std::uint32_t threads = quick ? 4 : 8;
    const std::uint32_t coros = 4;
    const std::uint32_t partitions = 24;
    const std::uint64_t part_bytes = 128ull << 10;

    TestbedConfig cfg;
    cfg.computeBlades = 1;
    cfg.memoryBlades = 3;
    cfg.threadsPerBlade = threads;
    cfg.bladeBytes = 8ull << 20;
    cfg.smart = presets::full();
    cfg.smart.withBenchTimescale();
    cfg.smart.withOverloadWatermarks(48, 96);
    cli.configureCache(cfg.smart);
    // +1 slot on thread 0 for the membership plane's migration worker.
    cfg.smart.corosPerThread = coros + 1;
    RunCapture *cap = cli.nextCapture("elasticity");
    if (cap != nullptr) {
        cfg.traceSampleNs = sim::usec(500);
        cli.configureSpans(cfg);
        cli.configureTimeline(cfg);
    }
    Testbed tb(cfg);
    SmartRuntime &rt = tb.compute(0);

    // The replacement blade joins live at t=18 ms; built outside the
    // Testbed so it starts cold (no QPs, no MR traffic) like a real
    // hot-add would.
    memblade::MemoryBlade mb3(tb.sim(), cfg.hw, "mb3", cfg.bladeBytes);

    MembershipPlane::Config pc;
    pc.partitions = partitions;
    pc.partBytes = part_bytes;
    pc.settleNs = sim::usec(100);
    pc.healthCheckNs = sim::usec(200);
    MembershipPlane plane(tb.sim(), pc, "elastic0");
    plane.addRuntime(rt);
    for (std::uint32_t m = 0; m < tb.numMemBlades(); ++m)
        plane.addBlade(tb.memBlade(m));
    plane.seedPartitions();
    plane.startHealthMonitor();

    // Membership event schedule: drain, join, crash.
    const Time drain_at = sim::msec(10);
    const Time join_at = sim::msec(18);
    const Time crash_at = sim::msec(26);
    const Time run_end = sim::msec(42);
    tb.sim().schedule(drain_at, [&plane] { plane.drain(2); });
    tb.sim().schedule(join_at, [&plane, &mb3] { plane.join(mb3); });
    sim::FaultPlane &fp = tb.faultPlane(0xe1a5 + cli.seed());
    fp.oneShot(crash_at, sim::FaultKind::Crash, "mb1", 0); // no restart

    Shared sh;
    for (std::uint32_t t = 0; t < threads; ++t) {
        for (std::uint32_t k = 0; k < coros; ++k) {
            std::uint64_t seed = 0xe1a57 + t * 131ull + k * 7ull +
                                 cli.seed() * 0x9e3779b97f4a7c15ull;
            rt.spawnWorker(t, [&plane, &sh, seed](SmartCtx &ctx) {
                return elasticWorker(ctx, plane, seed, sh);
            });
        }
    }

    // 1 ms buckets across the whole run: the knee curve.
    const Time bucket = sim::msec(1);
    std::vector<std::uint64_t> opsPerMs;
    std::uint64_t prevOps = 0;
    for (Time t = bucket; t <= run_end; t += bucket) {
        tb.runUntil(t);
        std::uint64_t now = rt.appOps.value();
        opsPerMs.push_back(now - prevOps);
        prevOps = now;
    }

    auto window = [&](Time a, Time b) {
        std::uint64_t ops = 0;
        for (Time t = a; t < b; t += bucket)
            ops += opsPerMs[t / bucket];
        return static_cast<double>(ops) /
               (static_cast<double>(b - a) / 1000.0);
    };

    struct PhaseRow
    {
        const char *name;
        Time start, end;
    };
    std::vector<PhaseRow> phases = {
        {"pre", sim::msec(2), drain_at},
        {"drain", drain_at, join_at},
        {"join", join_at, crash_at},
        {"crash", crash_at, sim::msec(34)},
        {"post", sim::msec(34), run_end},
    };

    std::cout << "== Elasticity: drain + join + crash mid-run (" << threads
              << " threads x " << coros << " coros, " << partitions
              << " partitions) ==\n";
    sim::Table pt({"phase", "start_ms", "end_ms", "mops"});
    for (const PhaseRow &ph : phases) {
        pt.row()
            .cell(std::string(ph.name))
            .cell(static_cast<std::uint64_t>(ph.start / 1'000'000))
            .cell(static_cast<std::uint64_t>(ph.end / 1'000'000))
            .cell(window(ph.start, ph.end), 2);
    }
    cli.addTable("elasticity_phases", pt);

    sim::Table tl({"ms", "kops"});
    for (std::size_t i = 0; i < opsPerMs.size(); ++i)
        tl.row().cell(std::uint64_t(i)).cell(
            static_cast<double>(opsPerMs[i]) / 1000.0, 1);
    cli.addTable("elasticity_timeline", tl);

    sim::Table mt({"migrated_parts", "migrated_mb", "joins", "drains",
                   "failovers", "epoch", "fenced", "handoffs",
                   "shed_prefetch", "chunked_posts", "op_delays"});
    double handoffs = 0;
    if (cache::BufferManager *bm = rt.cache())
        handoffs = static_cast<double>(bm->handoffCount());
    mt.row()
        .cell(plane.migratedPartitions())
        .cell(static_cast<double>(plane.migratedBytes()) / (1 << 20), 2)
        .cell(plane.joinCount())
        .cell(plane.drainCount())
        .cell(plane.failoverCount())
        .cell(plane.view().epoch())
        .cell(plane.view().fencedCount())
        .cell(static_cast<std::uint64_t>(handoffs))
        .cell(rt.shedPrefetchCount())
        .cell(rt.chunkedPostCount())
        .cell(rt.opDelayCount());
    cli.addTable("elasticity_membership", mt);

    double pre = window(sim::msec(2), drain_at);
    double post = window(sim::msec(34), run_end);
    double ratio = pre > 0 ? post / pre : 0.0;
    sim::Table d({"pre_mops", "post_mops", "post_over_pre", "failed_ops",
                  "fenced_retries", "other_retries", "migration_waits"});
    d.row()
        .cell(pre, 2)
        .cell(post, 2)
        .cell(ratio, 3)
        .cell(sh.failedOps)
        .cell(sh.fencedRetries)
        .cell(sh.otherRetries)
        .cell(sh.migrationWaits);
    cli.addTable("elasticity_degradation", d);

    captureRun(tb, cap);

    cli.note("Expected shape: dips at drain (10 ms), join rebalance "
             "(18 ms) and crash (26 ms); zero failed ops because every "
             "affected access is fenced by the cluster view and retried "
             "after re-placement; post recovers to >=90% of pre on the "
             "surviving two-thirds capacity plus the joined blade.");

    bool bad = false;
    if (sh.failedOps != 0) {
        std::cerr << "elasticity: " << sh.failedOps
                  << " ops surfaced as failed (want 0)\n";
        bad = true;
    }
    if (ratio < 0.9) {
        std::cerr << "elasticity: post/pre throughput ratio " << ratio
                  << " < 0.9\n";
        bad = true;
    }
    if (bad)
        return 1;
    return cli.finish();
}
