/**
 * @file
 * Reproduces paper Figure 4: (a) READ/WRITE throughput and (b) DRAM
 * traffic per work request, as functions of thread count and outstanding
 * work requests per thread (per-thread doorbells, no throttling — this
 * is the §3.2 motivation experiment).
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "harness/rdma_bench.hpp"
#include "sim/table.hpp"

using namespace smart;
using namespace smart::harness;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv, "fig04_cache_thrash");

    std::vector<std::uint32_t> threads =
        cli.quick() ? std::vector<std::uint32_t>{36, 96}
                    : std::vector<std::uint32_t>{8, 16, 36, 64, 96};
    std::vector<std::uint32_t> depths =
        cli.quick() ? std::vector<std::uint32_t>{8, 32}
                    : std::vector<std::uint32_t>{1, 2, 4, 8, 16, 32};
    std::uint32_t max_threads = threads.back();
    std::uint32_t max_depth = depths.back();

    for (rnic::Op op : {rnic::Op::Read, rnic::Op::Write}) {
        const char *op_name = op == rnic::Op::Read ? "READ" : "WRITE";
        std::cout << "== Figure 4a: 8-byte " << op_name
                  << " MOP/s vs (threads x OWRs per thread) ==\n";
        sim::Table tput({"threads\\owr", "1", "2", "4", "8", "16", "32"});
        sim::Table dram({"threads\\owr", "1", "2", "4", "8", "16", "32"});

        for (std::uint32_t t : threads) {
            tput.row().cell(static_cast<std::uint64_t>(t));
            dram.row().cell(static_cast<std::uint64_t>(t));
            for (std::uint32_t d : {1u, 2u, 4u, 8u, 16u, 32u}) {
                bool selected = false;
                for (std::uint32_t dd : depths)
                    selected |= dd == d;
                if (!selected) {
                    tput.cell(std::string("-"));
                    dram.cell(std::string("-"));
                    continue;
                }
                TestbedConfig cfg;
                cfg.computeBlades = 1;
                cfg.memoryBlades = 1;
                cfg.threadsPerBlade = t;
                cfg.smart = presets::baseline()
                                .withQpPolicy(QpPolicy::PerThreadDb)
                                .withCoros(1);
                cli.configureShards(cfg);

                RdmaBenchParams params;
                params.op = op;
                params.depth = d;
                params.seed = cli.seed();
                params.measureNs =
                    cli.quick() ? sim::msec(2) : sim::msec(4);
                // Capture the deepest corner — where WQE-cache thrash
                // (per-thread wqe_refetches) is actually visible.
                RunCapture *cap =
                    t == max_threads && d == max_depth
                        ? cli.nextCapture(std::string(op_name) + "/t" +
                                          std::to_string(t) + "/owr" +
                                          std::to_string(d))
                        : nullptr;
                RdmaBenchResult r = runRdmaBench(cfg, params, cap);
                tput.cell(r.mops, 1);
                dram.cell(r.dramBytesPerWr, 0);
            }
        }
        cli.addTable(std::string("fig04a_") +
                         (op == rnic::Op::Read ? "read" : "write"),
                     tput);
        std::cout << "\n== Figure 4b: DRAM bytes per WR (" << op_name
                  << ", lower is better) ==\n";
        cli.addTable(std::string("fig04b_") +
                         (op == rnic::Op::Read ? "read" : "write"),
                     dram);
        std::cout << "\n";
    }
    cli.note("Paper shape: best READ IOPS at 96 thr x 8 OWRs (~768 "
             "total); 96 thr x 32 OWRs halves throughput and raises "
             "DRAM traffic from ~93 to ~180 B/WR (WQE cache misses).");
    return cli.finish();
}
