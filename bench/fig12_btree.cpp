/**
 * @file
 * Reproduces paper Figure 12: Sherman+ vs Sherman+ w/ SL vs SMART-BT
 * across the three YCSB mixes — (a)-(c) scale-up on one server,
 * (d)-(f) scale-out over multiple servers (each server = one memory
 * blade + one 94-thread compute blade, as in the paper).
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "harness/bt_bench.hpp"
#include "sim/table.hpp"

using namespace smart;
using namespace smart::harness;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv, "fig12_btree");
    bool quick = cli.quick();
    std::uint64_t keys = quick ? 300'000 : 1'000'000;

    const std::vector<workload::YcsbMix> mixes = {
        workload::YcsbMix::writeHeavy(), workload::YcsbMix::readHeavy(),
        workload::YcsbMix::readOnly()};
    const std::vector<BtVariant> variants = {
        BtVariant::ShermanPlus, BtVariant::ShermanPlusSl,
        BtVariant::SmartBt};

    // ---- (a)-(c): scale-up, one server ----
    std::vector<std::uint32_t> threads =
        quick ? std::vector<std::uint32_t>{24, 94}
              : std::vector<std::uint32_t>{8, 16, 32, 48, 64, 94};
    for (const auto &mix : mixes) {
        std::cout << "== Figure 12 scale-up (" << mix.name()
                  << "): MOP/s, 1 server ==\n";
        sim::Table t({"threads", "Sherman+", "Sherman+_w/SL", "SMART-BT"});
        for (std::uint32_t thr : threads) {
            t.row().cell(static_cast<std::uint64_t>(thr));
            for (BtVariant v : variants) {
                BtBenchParams p;
                p.variant = v;
                p.numKeys = keys;
                p.servers = 1;
                p.threadsPerServer = thr;
                p.seed = cli.seed();
                p.shards = cli.shards();
                p.spanSampleEvery = cli.spanSampleEvery();
                p.mix = mix;
                p.measureNs = quick ? sim::msec(2) : sim::msec(4);
                RunCapture *cap =
                    thr == threads.back()
                        ? cli.nextCapture(std::string(btVariantName(v)) +
                                          "/" + mix.name())
                        : nullptr;
                t.cell(runBtBench(p, cap).mops, 2);
            }
        }
        cli.addTable(std::string("fig12_scaleup_") + mix.name(), t);
        std::cout << "\n";
    }

    // ---- (d)-(f): scale-out, 94 threads per server ----
    std::vector<std::uint32_t> servers =
        quick ? std::vector<std::uint32_t>{1, 2}
              : std::vector<std::uint32_t>{1, 2, 4, 6};
    for (const auto &mix : mixes) {
        std::cout << "== Figure 12 scale-out (" << mix.name()
                  << "): MOP/s, 94 threads per server ==\n";
        sim::Table t({"servers", "Sherman+", "Sherman+_w/SL", "SMART-BT"});
        for (std::uint32_t sv : servers) {
            t.row().cell(static_cast<std::uint64_t>(sv));
            for (BtVariant v : variants) {
                BtBenchParams p;
                p.variant = v;
                p.numKeys = keys;
                p.servers = sv;
                p.threadsPerServer = 94;
                p.seed = cli.seed();
                p.shards = cli.shards();
                p.mix = mix;
                p.measureNs = quick ? sim::msec(2) : sim::msec(4);
                t.cell(runBtBench(p).mops, 2);
            }
        }
        cli.addTable(std::string("fig12_scaleout_") + mix.name(), t);
        std::cout << "\n";
    }

    cli.note("Paper shape: speculative lookup converts the workload "
             "from bandwidth- to IOPS-bound (up to 1.6x on "
             "read-heavy), but alone stops scaling beyond ~64 "
             "threads; SMART-BT adds thread-aware allocation and "
             "reaches ~2x Sherman+ on read-only.");
    return cli.finish();
}
