/**
 * @file
 * Fault storm: throughput before / during / after an injected memory
 * blade crash. Workers issue random 64 B READs alternating across two
 * memory blades; at t=12 ms blade mb1 crashes for 8 ms (taking half the
 * working set offline), restarts with a fresh rkey, and the runtime's
 * retry/reconnect machinery carries the workload back to its pre-fault
 * throughput. Reports per-phase throughput and the post/pre ratio —
 * the paper-style robustness claim is post_over_pre >= 0.9.
 *
 * A second scenario exercises membership churn: the FaultPlane fires
 * periodic faults at the membership plane's "drain.mb1" target, so the
 * blade gracefully drains (live migration out) and rejoins (rebalance
 * back) on a timer while readers keep running. Gates: zero failed ops
 * and post/pre >= 0.9 there as well.
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "harness/testbed.hpp"
#include "sim/fault.hpp"
#include "sim/random.hpp"
#include "sim/table.hpp"
#include "smart/membership.hpp"
#include "smart/smart_ctx.hpp"

using namespace smart;
using namespace smart::harness;
using sim::Task;
using sim::Time;

namespace {

struct Shared
{
    std::uint64_t failedOps = 0; ///< ops that exhausted verb retries
};

Task
stormWorker(SmartCtx &ctx, std::uint32_t num_blades, std::uint64_t seed,
            std::uint64_t region_bytes, Shared &sh)
{
    SmartRuntime &rt = ctx.runtime();
    sim::Rng rng(seed);
    const std::uint64_t slots = region_bytes / 64;
    std::uint8_t *buf = ctx.scratch(64);
    for (;;) {
        std::uint32_t blade = static_cast<std::uint32_t>(
            rng.uniform(num_blades));
        std::uint64_t off = rng.uniform(slots) * 64;
        Time start = ctx.sim().now();
        co_await ctx.opBegin();
        co_await ctx.access(rt.ptr(blade, off),
                            AccessOp::read(MemSpan{buf, 64}));
        bool failed = ctx.failed();
        if (failed)
            ctx.clearError();
        ctx.opEnd();
        if (failed)
            ++sh.failedOps;
        else
            rt.recordOp(ctx.sim().now() - start, 0);
    }
}

struct Phase
{
    const char *name;
    Time start;
    Time end;
    std::uint64_t ops = 0;
    std::uint64_t failed = 0;
};

/** Membership-churn worker: placement re-resolved every attempt. */
Task
churnWorker(SmartCtx &ctx, MembershipPlane &plane, std::uint64_t seed,
            Shared &sh)
{
    SmartRuntime &rt = ctx.runtime();
    sim::Rng rng(seed);
    const std::uint64_t slots = plane.config().partBytes / 64;
    std::uint8_t *buf = ctx.scratch(64);
    for (;;) {
        std::uint32_t part =
            static_cast<std::uint32_t>(rng.uniform(plane.numPartitions()));
        std::uint64_t off = rng.uniform(slots) * 64;
        Time start = ctx.sim().now();
        co_await ctx.opBegin();
        bool done = false;
        for (int attempt = 0; attempt < 256 && !done; ++attempt) {
            while (plane.migrating(part))
                co_await ctx.sim().delay(
                    sim::cyclesToNs(8192 + rng.uniform(8192)));
            std::uint32_t blade = plane.bladeOf(part);
            if (blade == MembershipPlane::kNoBlade) {
                co_await ctx.sim().delay(
                    sim::cyclesToNs(8192 + rng.uniform(8192)));
                continue;
            }
            co_await ctx.access(rt.ptr(blade,
                                       plane.partitionOffset(part) + off),
                                AccessOp::read(MemSpan{buf, 64}));
            if (!ctx.failed()) {
                done = true;
                break;
            }
            ctx.clearError();
        }
        ctx.opEnd();
        if (done)
            rt.recordOp(ctx.sim().now() - start, 0);
        else
            ++sh.failedOps;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv, "fault_storm");
    bool quick = cli.quick();

    const std::uint32_t threads = quick ? 4 : 8;
    const std::uint32_t coros = 4;
    const std::uint64_t region = 64ull << 20; // per-blade footprint

    TestbedConfig cfg;
    cfg.computeBlades = 1;
    cfg.memoryBlades = 2;
    cfg.threadsPerBlade = threads;
    cfg.bladeBytes = region;
    cfg.smart = presets::full();
    cfg.smart.withBenchTimescale();
    cli.configureCache(cfg.smart);
    cfg.smart.corosPerThread = coros;
    RunCapture *cap = cli.nextCapture("storm");
    if (cap != nullptr) {
        cfg.traceSampleNs = sim::usec(500);
        cli.configureSpans(cfg);
    }
    Testbed tb(cfg);

    // The fault schedule: mb1 crashes at 12 ms and restarts at 20 ms
    // (NVM contents survive; its rkey does not).
    const Time crash_at = sim::msec(12);
    const Time down_for = sim::msec(8);
    sim::FaultPlane &fp = tb.faultPlane(0xfa57 + cli.seed());
    fp.oneShot(crash_at, sim::FaultKind::Crash, "mb1", down_for);

    Shared sh;
    SmartRuntime &rt = tb.compute(0);
    for (std::uint32_t t = 0; t < threads; ++t) {
        for (std::uint32_t k = 0; k < coros; ++k) {
            std::uint64_t seed = 0x570a11 + t * 131ull + k * 7ull +
                                 cli.seed() * 0x9e3779b97f4a7c15ull;
            rt.spawnWorker(t, [&rt, &sh, seed, region](SmartCtx &ctx) {
                return stormWorker(ctx, rt.numBlades(), seed, region, sh);
            });
        }
    }

    // warmup | pre-fault | crash+restart | settle | post-recovery
    std::vector<Phase> phases = {
        {"pre", sim::msec(2), crash_at},
        {"during", crash_at, crash_at + down_for + sim::msec(2)},
        {"post", sim::msec(24), sim::msec(34)},
    };

    tb.sim().runUntil(phases.front().start); // warmup
    for (Phase &ph : phases) {
        tb.sim().runUntil(ph.start); // settle gap between phases
        std::uint64_t ops0 = rt.appOps.value();
        std::uint64_t failed0 = sh.failedOps;
        tb.sim().runUntil(ph.end);
        ph.ops = rt.appOps.value() - ops0;
        ph.failed = sh.failedOps - failed0;
    }

    auto mops = [](const Phase &ph) {
        return static_cast<double>(ph.ops) /
               (static_cast<double>(ph.end - ph.start) / 1000.0);
    };

    std::cout << "== Fault storm: READ throughput across an mb1 crash ("
              << threads << " threads x " << coros << " coros) ==\n";
    sim::Table t({"phase", "start_ms", "end_ms", "ops", "mops",
                  "failed_ops"});
    for (const Phase &ph : phases) {
        t.row()
            .cell(std::string(ph.name))
            .cell(static_cast<std::uint64_t>(ph.start / 1'000'000))
            .cell(static_cast<std::uint64_t>(ph.end / 1'000'000))
            .cell(ph.ops)
            .cell(mops(ph), 2)
            .cell(ph.failed);
    }
    cli.addTable("fault_storm_phases", t);

    double pre = mops(phases[0]);
    double during = mops(phases[1]);
    double post = mops(phases[2]);
    double ratio = pre > 0 ? post / pre : 0.0;
    sim::Table d({"pre_mops", "during_mops", "post_mops", "post_over_pre"});
    d.row().cell(pre, 2).cell(during, 2).cell(post, 2).cell(ratio, 3);
    cli.addTable("fault_storm_degradation", d);

    captureRun(tb, cap);

    cli.note("Expected shape: during_mops dips (ops on mb1 burn retry "
             "budget while it is down) but stays well above zero (mb0 "
             "unaffected); post_mops recovers to within 10% of pre_mops "
             "once mb1 restarts and clients pick up its new rkey.");
    if (ratio < 0.9) {
        std::cerr << "fault_storm: post/pre throughput ratio " << ratio
                  << " < 0.9\n";
        return 1;
    }

    // ---- scenario 2: membership churn -----------------------------------
    // A separate cluster where the FaultPlane drives periodic graceful
    // drain/rejoin cycles through the membership plane's "drain.mb1"
    // fault target: mb1 leaves at t=6 ms and t=16 ms for 3 ms each,
    // migrating its partitions out and rebalancing them back on rejoin.
    {
        const std::uint32_t cthreads = quick ? 2 : 4;
        const std::uint32_t ccoros = 4;
        TestbedConfig ccfg;
        ccfg.computeBlades = 1;
        ccfg.memoryBlades = 2;
        ccfg.threadsPerBlade = cthreads;
        ccfg.bladeBytes = 8ull << 20;
        ccfg.smart = presets::full();
        ccfg.smart.withBenchTimescale();
        cli.configureCache(ccfg.smart);
        ccfg.smart.corosPerThread = ccoros + 1; // +1 for migration worker
        Testbed ctb(ccfg);
        SmartRuntime &crt = ctb.compute(0);

        MembershipPlane::Config pc;
        pc.partitions = 16;
        pc.partBytes = 64ull << 10;
        pc.settleNs = sim::usec(100);
        pc.healthCheckNs = sim::usec(200);
        MembershipPlane plane(ctb.sim(), pc, "churn0");
        plane.addRuntime(crt);
        for (std::uint32_t m = 0; m < ctb.numMemBlades(); ++m)
            plane.addBlade(ctb.memBlade(m));
        plane.seedPartitions();
        plane.startHealthMonitor();
        plane.enableChurnTargets();

        sim::FaultPlane &cfp = ctb.faultPlane(0xc442 + cli.seed());
        cfp.periodic(sim::msec(6), sim::msec(10), sim::FaultKind::Crash,
                     "drain.mb1", sim::msec(3));

        Shared csh;
        for (std::uint32_t t = 0; t < cthreads; ++t) {
            for (std::uint32_t k = 0; k < ccoros; ++k) {
                std::uint64_t seed = 0xc4a0 + t * 131ull + k * 7ull +
                                     cli.seed() * 0x9e3779b97f4a7c15ull;
                crt.spawnWorker(t, [&plane, &csh, seed](SmartCtx &ctx) {
                    return churnWorker(ctx, plane, seed, csh);
                });
            }
        }

        std::vector<Phase> cphases = {
            {"pre", sim::msec(2), sim::msec(6)},
            {"churn", sim::msec(6), sim::msec(21)},
            {"post", sim::msec(21), sim::msec(25)},
        };
        ctb.sim().runUntil(cphases.front().start);
        for (Phase &ph : cphases) {
            ctb.sim().runUntil(ph.start);
            std::uint64_t ops0 = crt.appOps.value();
            std::uint64_t failed0 = csh.failedOps;
            ctb.sim().runUntil(ph.end);
            ph.ops = crt.appOps.value() - ops0;
            ph.failed = csh.failedOps - failed0;
        }

        std::cout << "== Membership churn: periodic drain/rejoin of mb1 ("
                  << cthreads << " threads x " << ccoros << " coros) ==\n";
        sim::Table ct({"phase", "start_ms", "end_ms", "ops", "mops",
                       "failed_ops"});
        for (const Phase &ph : cphases) {
            ct.row()
                .cell(std::string(ph.name))
                .cell(static_cast<std::uint64_t>(ph.start / 1'000'000))
                .cell(static_cast<std::uint64_t>(ph.end / 1'000'000))
                .cell(ph.ops)
                .cell(mops(ph), 2)
                .cell(ph.failed);
        }
        cli.addTable("fault_storm_churn_phases", ct);

        double cpre = mops(cphases[0]);
        double cchurn = mops(cphases[1]);
        double cpost = mops(cphases[2]);
        double cratio = cpre > 0 ? cpost / cpre : 0.0;
        sim::Table cs({"pre_mops", "churn_mops", "post_mops",
                       "post_over_pre", "drains", "joins", "migrated_parts",
                       "epoch", "failed_ops"});
        cs.row()
            .cell(cpre, 2)
            .cell(cchurn, 2)
            .cell(cpost, 2)
            .cell(cratio, 3)
            .cell(plane.drainCount())
            .cell(plane.joinCount())
            .cell(plane.migratedPartitions())
            .cell(plane.view().epoch())
            .cell(csh.failedOps);
        cli.addTable("fault_storm_churn_summary", cs);

        plane.stopHealthMonitor();

        if (csh.failedOps != 0) {
            std::cerr << "fault_storm: churn surfaced " << csh.failedOps
                      << " failed ops (want 0)\n";
            return 1;
        }
        if (cratio < 0.9) {
            std::cerr << "fault_storm: churn post/pre throughput ratio "
                      << cratio << " < 0.9\n";
            return 1;
        }
    }
    return cli.finish();
}
