/**
 * @file
 * Reproduces paper Figure 14: conflict avoidance on 100%-update SMART-HT
 * (theta = 0.99) — (a) throughput, (b) average retries per operation for
 * none / +Backoff / +DynLimit / +CoroThrot, and (c) the retry-count
 * distribution at 96 threads.
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "harness/ht_bench.hpp"
#include "sim/table.hpp"

using namespace smart;
using namespace smart::harness;

namespace {

std::uint64_t g_seed = 0;       // from BenchCli --seed
std::uint32_t g_span_every = 0; // from BenchCli --trace-spans
const BenchCli *g_cli = nullptr; // for --cache-* flags

struct Variant
{
    const char *name;
    SmartConfig cfg;
};

std::vector<Variant>
variants()
{
    SmartConfig none = presets::workReqThrot(); // ThdRes + Throttle only
    SmartConfig backoff = none;
    backoff.withBackoff(true, false);
    SmartConfig dynlim = backoff;
    dynlim.withBackoff(true, true);
    SmartConfig full = presets::full();
    return {{"none", none},
            {"+Backoff", backoff},
            {"+DynLimit", dynlim},
            {"+CoroThrot", full}};
}

HtBenchResult
run(const SmartConfig &smart, std::uint32_t threads, std::uint64_t keys,
    bool quick, RunCapture *cap)
{
    TestbedConfig cfg;
    cfg.computeBlades = 1;
    cfg.memoryBlades = 2;
    cfg.threadsPerBlade = threads;
    cfg.bladeBytes = 3ull << 30;
    cfg.smart = smart;
    cfg.smart.withBenchTimescale();
    g_cli->configureCache(cfg.smart);
    g_cli->configureShards(cfg);
    cfg.spanSampleEvery = g_span_every;

    HtBenchParams p;
    p.numKeys = keys;
    p.mix = workload::YcsbMix::updateOnly();
    p.seed = g_seed;
    p.warmupNs = sim::msec(8);
    p.measureNs = quick ? sim::msec(2) : sim::msec(4);
    return runHtBench(cfg, p, cap);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv, "fig14_conflict");
    g_seed = cli.seed();
    g_span_every = cli.spanSampleEvery();
    g_cli = &cli;
    bool quick = cli.quick();
    std::uint64_t keys = quick ? 200'000 : 1'000'000;
    std::vector<Variant> vars = variants();

    std::cout << "== Figure 14a: update-only MOP/s (theta = 0.99) ==\n";
    sim::Table a({"threads", "none", "+Backoff", "+DynLimit",
                  "+CoroThrot"});
    sim::Table b({"threads", "none", "+Backoff", "+DynLimit",
                  "+CoroThrot"});
    std::vector<std::uint32_t> threads =
        quick ? std::vector<std::uint32_t>{16, 96}
              : std::vector<std::uint32_t>{8, 16, 32, 48, 64, 96};

    std::vector<HtBenchResult> at96(vars.size());
    for (std::uint32_t t : threads) {
        a.row().cell(static_cast<std::uint64_t>(t));
        b.row().cell(static_cast<std::uint64_t>(t));
        for (std::size_t v = 0; v < vars.size(); ++v) {
            // Capture the 96-thread run of every variant: the traces
            // show t_max / c_max adaptation kicking in (or not).
            RunCapture *cap =
                t == 96 ? cli.nextCapture(std::string(vars[v].name) +
                                          "/t96")
                        : nullptr;
            HtBenchResult r = run(vars[v].cfg, t, keys, quick, cap);
            a.cell(r.mops, 2);
            b.cell(r.avgRetries, 2);
            if (t == 96)
                at96[v] = r;
        }
    }
    cli.addTable("fig14a", a);
    std::cout << "\n== Figure 14b: average retries per update ==\n";
    cli.addTable("fig14b", b);

    std::cout << "\n== Figure 14c: retry-count distribution at 96 threads "
                 "(% of updates) ==\n";
    sim::Table c({"retries", "none", "+Backoff", "+DynLimit",
                  "+CoroThrot"});
    for (int bucket = 0; bucket <= 8; ++bucket) {
        c.row().cell(bucket == 8 ? std::string(">=8")
                                 : std::to_string(bucket));
        for (std::size_t v = 0; v < vars.size(); ++v) {
            std::uint64_t total = 0;
            for (int i = 0; i < 64; ++i)
                total += at96[v].retryHist[i];
            std::uint64_t n = 0;
            if (bucket == 8) {
                for (int i = 8; i < 64; ++i)
                    n += at96[v].retryHist[i];
            } else {
                n = at96[v].retryHist[bucket];
            }
            c.cell(total ? 100.0 * static_cast<double>(n) / total : 0.0, 1);
        }
    }
    cli.addTable("fig14c", c);

    cli.note("\nPaper shape: without conflict avoidance ~11.5 retries "
             "per update at 96 threads vs ~1.1 with it; 93.3% of "
             "SMART updates need no retry; +DynLimit ~1.6x over "
             "+Backoff; +CoroThrot up to +67% more.");
    return cli.finish();
}
