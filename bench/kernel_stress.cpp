/**
 * @file
 * DES kernel microbench: drives the event queue directly (no RNIC or
 * SMART machinery) and verifies the allocation-free hot path.
 *
 * Four workloads exercise the kernel's distinct hot paths:
 *   resume_storm  coroutines cycling through near-future delays — the
 *                 EventFn::resume fast path on the calendar ring
 *   timer_wheel   self-rescheduling plain callbacks on the ring
 *   two_tier_mix  near (ring) and far (heap) delays interleaved, so
 *                 cross-tier pops and heap churn are measured too
 *   spawn_churn   a detached coroutine spawned per operation — the
 *                 FrameArena recycling path
 *   span_storm    resume_storm's loop with SpanTracer instrumentation
 *                 guards, run twice: tracer absent (span_storm_off) and
 *                 installed with sampling (span_storm_on)
 *   shard_scaling the same blade-partitioned workload run on 1/2/4/8
 *                 shards (real threads, conservative lookahead): local
 *                 loopers plus cross-blade wire pings per blade
 *
 * Each single-shard workload warms up (growing buffers, pooling
 * frames), then runs a measured window during which a global
 * operator-new hook counts heap allocations. resume_storm, timer_wheel,
 * spawn_churn and both span_storm runs must be exactly allocation-free
 * in steady state: any counted allocation fails the bench (exit 1). The
 * span runs additionally gate that the tracer never perturbs the
 * simulation: span_storm_off must process exactly resume_storm's event
 * count (the guard is one pointer load), and span_storm_on must process
 * the same events again while recording. shard_scaling gates that every
 * shard count processes exactly the same events and delivers the same
 * wire messages as the single-shard run (the determinism gate); the
 * wall-clock speedup column is informational here and gated by
 * scripts/compare_bench.py only on hosts with >= 4 cores. These are the
 * acceptance gates for the inline-event design, the observe-only span
 * layer and the sharded engine; there are no in-binary wall-clock
 * thresholds (a 1-core CI runner cannot demonstrate speedup).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/span.hpp"
#include "sim/table.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"
#include "sim/wire.hpp"

namespace {

bool g_count_allocs = false;
std::uint64_t g_allocs = 0;

void *
countedAlloc(std::size_t n)
{
    if (g_count_allocs)
        ++g_allocs;
    void *p = std::malloc(n);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

} // namespace

void *
operator new(std::size_t n)
{
    return countedAlloc(n);
}

void *
operator new[](std::size_t n)
{
    return countedAlloc(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using smart::sim::Simulator;
using smart::sim::Task;
using smart::sim::Time;

struct WorkloadResult
{
    std::uint64_t events = 0;
    double wallMs = 0.0;
    std::uint64_t allocs = 0;
    std::uint64_t peakDepth = 0;
};

/** Run @p sim for warm-up, then a measured, allocation-counted window. */
WorkloadResult
measure(Simulator &sim, Time warmup_ns, Time measure_ns)
{
    // Kill the one remaining lazy-growth source: a first-ever N-way
    // timestamp collision growing a calendar bucket mid-measurement.
    // 128 slots/bucket covers spawn_churn, whose per-op detached
    // coroutines pile deeper timestamp collisions than the loopers
    // (32 was enough before its gate flipped to must-be-alloc-free).
    sim.reserveEventStorage(128, 4096);
    sim.runUntil(warmup_ns);
    std::uint64_t events_before = sim.eventsProcessed();
    g_allocs = 0;
    g_count_allocs = true;
    auto t0 = std::chrono::steady_clock::now();
    sim.runUntil(warmup_ns + measure_ns);
    auto t1 = std::chrono::steady_clock::now();
    g_count_allocs = false;

    WorkloadResult r;
    r.events = sim.eventsProcessed() - events_before;
    r.wallMs = std::chrono::duration<double, std::milli>(t1 - t0).count();
    r.allocs = g_allocs;
    r.peakDepth = sim.peakQueueDepth();
    return r;
}

/** Coroutine looping over a fixed cycle of near-future delays. */
Task
resumeLooper(Simulator &sim, std::uint32_t lane)
{
    // Deterministic per-lane delay cycle within the calendar window. The
    // lane-unique offset keeps lanes from marching in synchronized
    // phase classes, which would pile one calendar bucket high enough
    // to outgrow its reserved storage.
    static constexpr Time kDelays[] = {5, 20, 80, 140, 250, 600, 1200};
    std::uint32_t i = lane;
    for (;;) {
        co_await sim.delay(kDelays[i % 7] + (lane * 7) % 509);
        i += 1 + lane % 3;
    }
}

WorkloadResult
runResumeStorm(std::uint32_t lanes, Time warmup, Time window)
{
    Simulator sim;
    for (std::uint32_t l = 0; l < lanes; ++l)
        sim.spawn(resumeLooper(sim, l));
    return measure(sim, warmup, window);
}

/** Self-rescheduling plain callback (no coroutine involved). */
void
rearmTimer(Simulator &sim, std::uint64_t *fired, std::uint32_t lane)
{
    ++*fired;
    // Lane-unique period (367 is prime) so lanes do not collapse into a
    // few synchronized phase classes sharing calendar buckets.
    Time next = 10 + (lane * 37) % 367;
    sim.schedule(next,
                 [&sim, fired, lane] { rearmTimer(sim, fired, lane); });
}

WorkloadResult
runTimerWheel(std::uint32_t lanes, Time warmup, Time window)
{
    Simulator sim;
    std::vector<std::uint64_t> fired(lanes, 0);
    for (std::uint32_t l = 0; l < lanes; ++l) {
        std::uint64_t *slot = &fired[l];
        sim.schedule(l % 97, [&sim, slot, l] { rearmTimer(sim, slot, l); });
    }
    return measure(sim, warmup, window);
}

/** Alternates ring-tier and heap-tier delays. */
Task
mixLooper(Simulator &sim, std::uint32_t lane)
{
    for (;;) {
        co_await sim.delay(30 + lane % 200);     // calendar ring
        co_await sim.delay(50'000 + 1000 * (lane % 7)); // far heap
    }
}

WorkloadResult
runTwoTierMix(std::uint32_t lanes, Time warmup, Time window)
{
    Simulator sim;
    for (std::uint32_t l = 0; l < lanes; ++l)
        sim.spawn(mixLooper(sim, l));
    return measure(sim, warmup, window);
}

/** One short-lived detached coroutine per operation (FramePool churn). */
Task
oneShotOp(Simulator &sim, Time d)
{
    co_await sim.delay(d);
}

Task
spawnDriver(Simulator &sim, std::uint32_t lane)
{
    for (;;) {
        sim.spawnDetached(oneShotOp(sim, 40 + (lane * 7) % 101));
        co_await sim.delay(90 + (lane * 13) % 127);
    }
}

WorkloadResult
runSpawnChurn(std::uint32_t lanes, Time warmup, Time window)
{
    Simulator sim;
    for (std::uint32_t l = 0; l < lanes; ++l)
        sim.spawn(spawnDriver(sim, l));
    return measure(sim, warmup, window);
}

/**
 * resume_storm's exact delay schedule with the span instrumentation
 * pattern wrapped around it: one pointer load per iteration when no
 * tracer is installed; begin/record/end into the pre-reserved pool when
 * one is. Virtual-time behavior is identical either way.
 */
Task
spanLooper(Simulator &sim, std::uint32_t lane, smart::sim::TrackId track)
{
    static constexpr Time kDelays[] = {5, 20, 80, 140, 250, 600, 1200};
    std::uint32_t i = lane;
    std::uint64_t n = 0;
    for (;;) {
        Time d = kDelays[i % 7] + (lane * 7) % 509;
        smart::sim::SpanTracer *sp = sim.spans();
        if (sp != nullptr && n++ % sp->sampleEvery() == 0) [[unlikely]] {
            smart::sim::SpanId op =
                sp->begin(track, smart::sim::Stage::Op, 0);
            Time t0 = sim.now();
            co_await sim.delay(d);
            sp->record(track, smart::sim::Stage::Dma, op, t0, sim.now());
            sp->end(op);
        } else {
            co_await sim.delay(d);
        }
        i += 1 + lane % 3;
    }
}

WorkloadResult
runSpanStorm(std::uint32_t lanes, Time warmup, Time window, bool traced,
             std::uint64_t *span_records = nullptr)
{
    Simulator sim;
    std::unique_ptr<smart::sim::SpanTracer> sp;
    std::vector<smart::sim::TrackId> tracks(lanes, 0);
    if (traced) {
        // Tracks interned and the record pool reserved before the
        // measured window; recording itself must then be alloc-free.
        sp = std::make_unique<smart::sim::SpanTracer>(sim, 4, 1u << 18);
        for (std::uint32_t l = 0; l < lanes; ++l)
            tracks[l] = sp->internTrack("lane" + std::to_string(l),
                                        "kernel");
    }
    for (std::uint32_t l = 0; l < lanes; ++l)
        sim.spawn(spanLooper(sim, l, tracks[l]));
    WorkloadResult r = measure(sim, warmup, window);
    if (span_records != nullptr && sp != nullptr)
        *span_records = sp->size() + sp->dropped();
    return r;
}

// ---------------------------------------------------------- shard scaling

/**
 * The blade-partitioned scaling workload: kBlades logical blades are
 * round-robined over N shards, each blade running local resume loopers
 * plus one pinger that wires a counted message to the next blade every
 * iteration. Blade streams only interact through the wire, so the total
 * event and delivery counts must be identical at every shard count —
 * that invariance is this workload's determinism gate. Allocation
 * counting stays off here: the global tally is not thread-safe and the
 * cross-shard rings legitimately touch the allocator on overflow.
 */
struct PingCount
{
    std::uint64_t *counter;

    void operator()() { ++*counter; }
};

Task
pingLooper(Simulator &sim, smart::sim::WireEndpoint &ep, Simulator &dst,
           std::uint64_t *counter, std::uint32_t blade)
{
    // Blade-unique (shard-count-independent) cadence; delivery exactly
    // one lookahead ahead, the tightest legal cross-shard horizon.
    const Time period = 200 + (blade * 31) % 277;
    for (;;) {
        co_await sim.delay(period);
        ep.send(dst, sim.now() + 250, PingCount{counter});
    }
}

struct ShardScalingResult
{
    std::uint32_t shards = 0;
    std::uint64_t events = 0;
    std::uint64_t delivered = 0;
    double wallMs = 0.0;
};

ShardScalingResult
runShardScaling(std::uint32_t nshards, std::uint32_t lanes, Time warmup,
                Time window)
{
    constexpr std::uint32_t kBlades = 8;
    smart::sim::ShardGroup group(nshards, 250);
    std::vector<std::uint64_t> delivered(kBlades, 0);
    std::vector<std::unique_ptr<smart::sim::WireEndpoint>> eps;
    eps.reserve(kBlades);
    // Endpoints constructed in blade order regardless of shard count, so
    // the (dtime, srcId, seq) delivery keys are shard-count-invariant.
    for (std::uint32_t b = 0; b < kBlades; ++b)
        eps.push_back(std::make_unique<smart::sim::WireEndpoint>(
            group.shard(b % group.size())));
    for (std::uint32_t b = 0; b < kBlades; ++b) {
        Simulator &sim = group.shard(b % group.size());
        for (std::uint32_t l = 0; l < lanes / kBlades; ++l)
            sim.spawn(resumeLooper(sim, b * 131 + l));
        std::uint32_t nb = (b + 1) % kBlades;
        sim.spawn(pingLooper(sim, *eps[b],
                             group.shard(nb % group.size()),
                             &delivered[nb], b));
    }

    group.runUntil(warmup);
    std::uint64_t events0 = 0;
    for (std::uint32_t s = 0; s < group.size(); ++s)
        events0 += group.shard(s).eventsProcessed();
    auto t0 = std::chrono::steady_clock::now();
    group.runUntil(warmup + window);
    auto t1 = std::chrono::steady_clock::now();

    ShardScalingResult r;
    r.shards = group.size();
    for (std::uint32_t s = 0; s < group.size(); ++s)
        r.events += group.shard(s).eventsProcessed();
    r.events -= events0;
    for (std::uint64_t d : delivered)
        r.delivered += d;
    r.wallMs = std::chrono::duration<double, std::milli>(t1 - t0).count();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    smart::harness::BenchCli cli(argc, argv, "kernel_stress");

    const std::uint32_t lanes = cli.quick() ? 128 : 512;
    const Time warmup = smart::sim::usec(cli.quick() ? 50 : 200);
    const Time window = smart::sim::usec(cli.quick() ? 400 : 4000);

    struct Row
    {
        const char *name;
        WorkloadResult r;
        bool mustBeAllocFree;
    };
    std::uint64_t span_records = 0;
    Row rows[] = {
        {"resume_storm", runResumeStorm(lanes, warmup, window), true},
        {"timer_wheel", runTimerWheel(lanes, warmup, window), true},
        {"two_tier_mix", runTwoTierMix(lanes, warmup, window), false},
        {"spawn_churn", runSpawnChurn(lanes, warmup, window), true},
        {"span_storm_off", runSpanStorm(lanes, warmup, window, false), true},
        {"span_storm_on",
         runSpanStorm(lanes, warmup, window, true, &span_records), true},
    };

    std::printf("== DES kernel stress (lanes=%u, window=%llu us) ==\n",
                lanes,
                static_cast<unsigned long long>(window / 1000));
    smart::sim::Table table({"workload", "events", "wall_ms",
                             "events_per_sec", "allocs",
                             "allocs_per_1k_events", "peak_depth"});
    bool fail = false;
    for (const Row &row : rows) {
        const WorkloadResult &r = row.r;
        double wall_s = r.wallMs > 0 ? r.wallMs / 1000.0 : 1e-9;
        double per_1k = r.events > 0
            ? 1000.0 * static_cast<double>(r.allocs) /
                  static_cast<double>(r.events)
            : 0.0;
        table.row()
            .cell(std::string(row.name))
            .cell(r.events)
            .cell(r.wallMs, 3)
            .cell(static_cast<double>(r.events) / wall_s, 0)
            .cell(r.allocs)
            .cell(per_1k, 3)
            .cell(r.peakDepth);
        if (row.mustBeAllocFree && r.allocs > 0) {
            fail = true;
            std::fprintf(stderr,
                         "FAIL: %s made %llu heap allocations in its "
                         "steady-state window (must be 0)\n",
                         row.name,
                         static_cast<unsigned long long>(r.allocs));
        }
    }
    cli.addTable("kernel_stress", table);

    // Span-layer gates: the tracer must observe, never perturb. With the
    // tracer absent the instrumented loop must replay resume_storm's
    // event schedule exactly (the guard is one pointer load); with it
    // installed, virtual time must still be untouched while it records.
    const WorkloadResult &resume = rows[0].r;
    const WorkloadResult &span_off = rows[4].r;
    const WorkloadResult &span_on = rows[5].r;
    if (span_off.events != resume.events) {
        fail = true;
        std::fprintf(stderr,
                     "FAIL: span_storm_off processed %llu events, "
                     "resume_storm %llu (disabled tracer perturbed the "
                     "simulation)\n",
                     static_cast<unsigned long long>(span_off.events),
                     static_cast<unsigned long long>(resume.events));
    }
    if (span_on.events != span_off.events) {
        fail = true;
        std::fprintf(stderr,
                     "FAIL: span_storm_on processed %llu events, "
                     "span_storm_off %llu (recording perturbed the "
                     "simulation)\n",
                     static_cast<unsigned long long>(span_on.events),
                     static_cast<unsigned long long>(span_off.events));
    }
    if (span_records == 0) {
        fail = true;
        std::fprintf(stderr,
                     "FAIL: span_storm_on recorded no spans\n");
    }
    double disabled_overhead_pct = resume.wallMs > 0.0
        ? 100.0 * (span_off.wallMs - resume.wallMs) / resume.wallMs
        : 0.0;
    std::printf("span tracer: disabled-guard wall overhead %+.2f%% vs "
                "resume_storm (informational); %llu spans recorded when "
                "enabled\n",
                disabled_overhead_pct,
                static_cast<unsigned long long>(span_records));
    smart::sim::Table span_gates({"span_records", "off_events_match",
                                  "on_events_match",
                                  "disabled_overhead_pct"});
    span_gates.row()
        .cell(span_records)
        .cell(std::string(span_off.events == resume.events ? "yes" : "NO"))
        .cell(std::string(span_on.events == span_off.events ? "yes" : "NO"))
        .cell(disabled_overhead_pct, 2);
    cli.addTable("kernel_stress_span_gates", span_gates);

    // Shard-scaling sweep: same workload, 1/2/4/8 shards. The gate is
    // determinism (identical event + delivery totals at every count);
    // the speedup column is informational in-binary and enforced by
    // scripts/compare_bench.py only when the host has >= 4 cores.
    const Time ss_warmup = smart::sim::usec(cli.quick() ? 20 : 50);
    const Time ss_window = smart::sim::usec(cli.quick() ? 100 : 1000);
    std::printf("== shard scaling (8 blades, window=%llu us) ==\n",
                static_cast<unsigned long long>(ss_window / 1000));
    smart::sim::Table ss_table({"shards", "events", "delivered", "wall_ms",
                                "events_per_sec", "speedup_vs_1"});
    ShardScalingResult ss_base{};
    for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
        ShardScalingResult r =
            runShardScaling(n, lanes, ss_warmup, ss_window);
        if (n == 1)
            ss_base = r;
        double wall_s = r.wallMs > 0 ? r.wallMs / 1000.0 : 1e-9;
        double speedup = r.wallMs > 0 ? ss_base.wallMs / r.wallMs : 0.0;
        ss_table.row()
            .cell(static_cast<std::uint64_t>(r.shards))
            .cell(r.events)
            .cell(r.delivered)
            .cell(r.wallMs, 3)
            .cell(static_cast<double>(r.events) / wall_s, 0)
            .cell(speedup, 2);
        if (r.events != ss_base.events || r.delivered != ss_base.delivered) {
            fail = true;
            std::fprintf(stderr,
                         "FAIL: shard_scaling at %u shards processed "
                         "%llu events / %llu deliveries; 1 shard "
                         "processed %llu / %llu (sharding changed the "
                         "simulation)\n",
                         r.shards,
                         static_cast<unsigned long long>(r.events),
                         static_cast<unsigned long long>(r.delivered),
                         static_cast<unsigned long long>(ss_base.events),
                         static_cast<unsigned long long>(ss_base.delivered));
        }
    }
    cli.addTable("kernel_stress_shard_scaling", ss_table);

    cli.note("Paper shape: allocation-free event hot path; resume_storm, "
             "timer_wheel, spawn_churn and both span_storm runs must "
             "report 0 steady-state allocs, the span tracer must never "
             "change the processed-event count, and every shard count "
             "must replay the single-shard simulation exactly.");

    int rc = cli.finish();
    return fail ? 1 : rc;
}
