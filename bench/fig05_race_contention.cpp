/**
 * @file
 * Reproduces paper Figure 5: baseline RACE hash-table update performance
 * (a) with growing thread counts (depth 8, Zipfian theta = 0.99) and
 * (b) with growing skew at 16 threads — the §3.3 motivation that
 * unsuccessful CAS retries destroy scalability.
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_cli.hpp"
#include "harness/ht_bench.hpp"
#include "sim/table.hpp"

using namespace smart;
using namespace smart::harness;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv, "fig05_race_contention");
    std::uint64_t keys = cli.quick() ? 200'000 : 1'000'000;

    std::cout << "== Figure 5a: RACE updates vs threads "
                 "(theta=0.99, depth=8) ==\n";
    sim::Table a({"threads", "MOPS", "p50_us", "p99_us", "avg_retries"});
    std::vector<std::uint32_t> threads =
        cli.quick() ? std::vector<std::uint32_t>{8, 32, 96}
                    : std::vector<std::uint32_t>{1, 2, 4, 8, 16, 32, 64,
                                                 96};
    for (std::uint32_t t : threads) {
        TestbedConfig cfg;
        cfg.computeBlades = 1;
        cfg.memoryBlades = 2;
        cfg.threadsPerBlade = t;
        cfg.bladeBytes = 2ull << 30;
        cfg.smart = presets::baseline();
        cli.configureSpans(cfg);
        cli.configureShards(cfg);

        HtBenchParams p;
        p.numKeys = keys;
        p.mix = workload::YcsbMix::updateOnly();
        p.seed = cli.seed();
        p.measureNs = cli.quick() ? sim::msec(2) : sim::msec(4);
        RunCapture *cap =
            t == threads.back()
                ? cli.nextCapture("update-only/t" + std::to_string(t))
                : nullptr;
        HtBenchResult r = runHtBench(cfg, p, cap);
        a.row()
            .cell(static_cast<std::uint64_t>(t))
            .cell(r.mops, 2)
            .cell(r.medianNs / 1000.0, 1)
            .cell(r.p99Ns / 1000.0, 1)
            .cell(r.avgRetries, 2);
    }
    cli.addTable("fig05a", a);

    std::cout << "\n== Figure 5b: RACE updates vs Zipfian theta "
                 "(16 threads) ==\n";
    sim::Table b({"theta", "MOPS", "p50_us", "p99_us", "avg_retries"});
    std::vector<double> thetas =
        cli.quick() ? std::vector<double>{0.0, 0.99}
                    : std::vector<double>{0.0, 0.5, 0.8, 0.9, 0.95, 0.99};
    for (double theta : thetas) {
        TestbedConfig cfg;
        cfg.computeBlades = 1;
        cfg.memoryBlades = 2;
        cfg.threadsPerBlade = 16;
        cfg.bladeBytes = 2ull << 30;
        cfg.smart = presets::baseline();
        cli.configureShards(cfg);

        HtBenchParams p;
        p.numKeys = keys;
        p.zipfTheta = theta;
        p.mix = workload::YcsbMix::updateOnly();
        p.seed = cli.seed();
        p.measureNs = cli.quick() ? sim::msec(2) : sim::msec(4);
        HtBenchResult r = runHtBench(cfg, p);
        b.row()
            .cell(theta, 2)
            .cell(r.mops, 2)
            .cell(r.medianNs / 1000.0, 1)
            .cell(r.p99Ns / 1000.0, 1)
            .cell(r.avgRetries, 2);
    }
    cli.addTable("fig05b", b);

    cli.note("\nPaper shape: RACE peaks around 8 threads, then "
             "throughput falls and p99 inflates (up to ~17x); rising "
             "skew inflates median ~2x and p99 ~78x.");
    return cli.finish();
}
